#pragma once
// Per-queue-instance operation counts, shared by every KeyedMinQueue
// backend (split out of queue_traits.hpp so standalone containers can
// count without pulling in the whole adapter layer). The paper's Table 1
// prices individual queue operations; multiplying these counts by per-op
// costs reproduces the queue-manipulation share of a whole simulation's
// overhead, and the ablation benches report them as throughput
// denominators.

#include <cstdint>

namespace sps::containers {

struct QueueOpCounters {
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;
  std::uint64_t erases = 0;

  [[nodiscard]] std::uint64_t total() const { return pushes + pops + erases; }

  QueueOpCounters& operator+=(const QueueOpCounters& o) {
    pushes += o.pushes;
    pops += o.pops;
    erases += o.erases;
    return *this;
  }

  friend bool operator==(const QueueOpCounters&,
                         const QueueOpCounters&) = default;
};

}  // namespace sps::containers
