#pragma once
// Pairing heap — an alternative ready-queue implementation used by the
// ablation study (DESIGN.md §6: "Ready queue: binomial heap vs pairing
// heap vs std::priority_queue rebuild").
//
// The PPES 2011 scheduler uses a binomial heap; pairing heaps are the
// usual contender in scheduler implementations (e.g. LITMUS^RT release
// queues), with O(1) push and amortized O(log n) pop. The ablation bench
// compares single-operation latency of both at the paper's queue sizes.
//
// Same handle contract as BinomialHeap: nodes never move; erase detaches
// the node's subtree and re-melds it, so all other handles stay valid
// (no Hooks needed — values never change node).

#include <cassert>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "util/arena.hpp"

namespace sps::containers {

template <typename T, typename Compare = std::less<T>>
class PairingHeap {
 public:
  struct Node {
    T value;
    Node* child = nullptr;    // leftmost child
    Node* sibling = nullptr;  // next sibling (right)
    Node* prev = nullptr;     // previous sibling, or parent if leftmost

    explicit Node(T v) : value(std::move(v)) {}
  };

  using handle = Node*;

  PairingHeap() = default;
  explicit PairingHeap(Compare cmp) : cmp_(std::move(cmp)) {}

  PairingHeap(const PairingHeap&) = delete;
  PairingHeap& operator=(const PairingHeap&) = delete;

  PairingHeap(PairingHeap&& other) noexcept
      : root_(std::exchange(other.root_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        cmp_(std::move(other.cmp_)),
        arena_(std::move(other.arena_)) {}

  ~PairingHeap() { clear(); }

  [[nodiscard]] bool empty() const noexcept { return root_ == nullptr; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  handle push(T value) {
    Node* n = arena_.create(std::move(value));
    root_ = (root_ == nullptr) ? n : meld(root_, n);
    ++size_;
    return n;
  }

  [[nodiscard]] const T& top() const {
    assert(!empty());
    return root_->value;
  }

  T pop() {
    assert(!empty());
    Node* old = root_;
    root_ = merge_pairs(old->child);
    if (root_ != nullptr) root_->prev = nullptr;
    T out = std::move(old->value);
    arena_.destroy(old);
    --size_;
    return out;
  }

  /// Remove an arbitrary element; all other handles stay valid.
  T erase(handle h) {
    assert(h != nullptr);
    if (h == root_) return pop();
    detach(h);
    Node* sub = merge_pairs(h->child);
    if (sub != nullptr) {
      sub->prev = nullptr;
      root_ = meld(root_, sub);
    }
    T out = std::move(h->value);
    arena_.destroy(h);
    --size_;
    return out;
  }

  void clear() noexcept {
    destroy(root_);
    root_ = nullptr;
    size_ = 0;
  }

  /// Structural self-check: heap order on every edge, parent/prev links
  /// consistent, node count equals size().
  [[nodiscard]] bool validate() const {
    if (root_ == nullptr) return size_ == 0;
    if (root_->prev != nullptr || root_->sibling != nullptr) return false;
    std::size_t counted = 0;
    return check(root_, counted) && counted == size_;
  }

 private:
  Node* meld(Node* a, Node* b) noexcept {
    if (cmp_(b->value, a->value)) std::swap(a, b);
    // b becomes a's leftmost child.
    b->prev = a;
    b->sibling = a->child;
    if (a->child != nullptr) a->child->prev = b;
    a->child = b;
    return a;
  }

  /// Two-pass pairing of a sibling list (the classic pairing-heap pop).
  Node* merge_pairs(Node* first) noexcept {
    if (first == nullptr) return nullptr;
    std::vector<Node*> pass;
    while (first != nullptr) {
      Node* a = first;
      Node* b = a->sibling;
      first = (b != nullptr) ? b->sibling : nullptr;
      a->sibling = nullptr;
      a->prev = nullptr;
      if (b != nullptr) {
        b->sibling = nullptr;
        b->prev = nullptr;
        pass.push_back(meld(a, b));
      } else {
        pass.push_back(a);
      }
    }
    Node* result = pass.back();
    for (auto it = std::next(pass.rbegin()); it != pass.rend(); ++it) {
      result = meld(*it, result);
    }
    return result;
  }

  /// Unlink h from its parent/sibling chain (h != root_).
  void detach(Node* h) noexcept {
    if (h->prev->child == h) {  // h is a leftmost child; prev is parent
      h->prev->child = h->sibling;
    } else {
      h->prev->sibling = h->sibling;
    }
    if (h->sibling != nullptr) h->sibling->prev = h->prev;
    h->sibling = nullptr;
    h->prev = nullptr;
  }

  bool check(const Node* n, std::size_t& counted) const {
    ++counted;
    for (const Node* c = n->child; c != nullptr; c = c->sibling) {
      if (cmp_(c->value, n->value)) return false;
      const Node* expect_prev = (c == n->child) ? n : nullptr;
      if (expect_prev != nullptr && c->prev != expect_prev) return false;
      if (c->sibling != nullptr && c->sibling->prev != c) return false;
      if (!check(c, counted)) return false;
    }
    return true;
  }

  void destroy(Node* n) noexcept {
    if (n == nullptr) return;
    destroy(n->child);
    destroy(n->sibling);
    arena_.destroy(n);
  }

  Node* root_ = nullptr;
  std::size_t size_ = 0;
  [[no_unique_address]] Compare cmp_{};
  /// Node storage: slab/free-list arena (util/arena.hpp) — push/pop churn
  /// at a steady queue size never touches the global allocator.
  util::SlabArena<Node> arena_;
};

}  // namespace sps::containers
