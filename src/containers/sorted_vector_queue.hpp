#pragma once
// Sorted-vector queue — ablation alternative for the sleep queue
// (DESIGN.md §6: "Sleep queue: RB tree vs sorted vector").
//
// Keeps (key, value) pairs sorted by key in a contiguous vector. Insert is
// O(n) (memmove), min is O(1), pop_min is O(n). At the paper's queue sizes
// (N = 4 and N = 64) the constant factors of contiguous memory can beat
// the pointer-chasing RB tree; the ablation bench quantifies exactly that
// trade-off. Handles are NOT stable (elements move); erase is by key+value
// match instead.

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace sps::containers {

template <typename Key, typename T, typename Compare = std::less<Key>>
class SortedVectorQueue {
 public:
  SortedVectorQueue() = default;
  explicit SortedVectorQueue(Compare cmp) : cmp_(std::move(cmp)) {}

  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }

  /// Insert after all existing equal keys (FIFO among duplicates),
  /// matching RbTree::insert semantics.
  void insert(Key key, T value) {
    auto it = std::upper_bound(
        items_.begin(), items_.end(), key,
        [this](const Key& k, const Entry& e) { return cmp_(k, e.first); });
    items_.insert(it, Entry{std::move(key), std::move(value)});
  }

  [[nodiscard]] const Key& min_key() const {
    assert(!empty());
    return items_.front().first;
  }

  [[nodiscard]] const T& min_value() const {
    assert(!empty());
    return items_.front().second;
  }

  std::pair<Key, T> pop_min() {
    assert(!empty());
    Entry out = std::move(items_.front());
    items_.erase(items_.begin());
    return out;
  }

  /// Erase the first element equal to (key, value); returns whether one
  /// was found.
  bool erase(const Key& key, const T& value) {
    auto lo = std::lower_bound(
        items_.begin(), items_.end(), key,
        [this](const Entry& e, const Key& k) { return cmp_(e.first, k); });
    for (auto it = lo; it != items_.end() && !cmp_(key, it->first); ++it) {
      if (it->second == value) {
        items_.erase(it);
        return true;
      }
    }
    return false;
  }

  void clear() noexcept { items_.clear(); }

  [[nodiscard]] bool validate() const {
    return std::is_sorted(
        items_.begin(), items_.end(),
        [this](const Entry& a, const Entry& b) { return cmp_(a.first, b.first); });
  }

 private:
  using Entry = std::pair<Key, T>;
  std::vector<Entry> items_;
  [[no_unique_address]] Compare cmp_{};
};

}  // namespace sps::containers
