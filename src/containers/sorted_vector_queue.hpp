#pragma once
// Sorted-vector queue — ablation alternative for the sleep queue
// (DESIGN.md §6: "Sleep queue: RB tree vs sorted vector").
//
// Keeps (key, value) pairs sorted by key in a contiguous vector, stored in
// REVERSE (descending) key order so the minimum sits at the BACK: pop_min
// is then a plain pop_back — O(1), no front memmove. Insert is O(n)
// (memmove), min is O(1). At the paper's queue sizes (N = 4 and N = 64)
// the constant factors of contiguous memory can beat the pointer-chasing
// RB tree; the ablation bench quantifies exactly that trade-off. Handles
// are NOT stable (elements move); erase is by key+value match instead —
// the stable-handle adapter in queue_traits.hpp lifts this container to
// the scheduler's queue concept.
//
// FIFO among duplicates is preserved under the reversed layout: a new
// duplicate is placed at the FRONT of its equal-key run, so the oldest
// equal element stays nearest the back and pops first.

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace sps::containers {

template <typename Key, typename T, typename Compare = std::less<Key>>
class SortedVectorQueue {
 public:
  SortedVectorQueue() = default;
  explicit SortedVectorQueue(Compare cmp) : cmp_(std::move(cmp)) {}

  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }

  /// Insert; FIFO among duplicates (matching RbTree::insert semantics).
  /// Placed before all existing equal keys in the descending layout,
  /// which is AFTER them in pop order.
  void insert(Key key, T value) {
    // First position whose key is <= `key` (first of the equal run, or
    // the first strictly-smaller element when there are no equals).
    auto it = std::lower_bound(
        items_.begin(), items_.end(), key,
        [this](const Entry& e, const Key& k) { return cmp_(k, e.first); });
    items_.insert(it, Entry{std::move(key), std::move(value)});
  }

  [[nodiscard]] const Key& min_key() const {
    assert(!empty());
    return items_.back().first;
  }

  [[nodiscard]] const T& min_value() const {
    assert(!empty());
    return items_.back().second;
  }

  std::pair<Key, T> pop_min() {
    assert(!empty());
    Entry out = std::move(items_.back());
    items_.pop_back();
    return out;
  }

  /// Erase the first-inserted element equal to (key, value); returns
  /// whether one was found. Under the reversed layout the oldest equal
  /// element is the one nearest the back of its run.
  bool erase(const Key& key, const T& value) {
    // Equal-key run [lo, hi): lo = first element <= key, hi = first
    // element < key (descending order).
    auto lo = std::lower_bound(
        items_.begin(), items_.end(), key,
        [this](const Entry& e, const Key& k) { return cmp_(k, e.first); });
    auto hi = std::upper_bound(
        lo, items_.end(), key,
        [this](const Key& k, const Entry& e) { return cmp_(e.first, k); });
    for (auto it = hi; it != lo;) {
      --it;
      if (it->second == value) {
        items_.erase(it);
        return true;
      }
    }
    return false;
  }

  void clear() noexcept { items_.clear(); }

  [[nodiscard]] bool validate() const {
    return std::is_sorted(
        items_.begin(), items_.end(),
        [this](const Entry& a, const Entry& b) { return cmp_(b.first, a.first); });
  }

 private:
  using Entry = std::pair<Key, T>;
  std::vector<Entry> items_;  ///< descending by key; minimum at the back
  [[no_unique_address]] Compare cmp_{};
};

}  // namespace sps::containers
