#pragma once
// Queue concept layer — the uniform contract every scheduler queue backend
// models (DESIGN.md "Queue concept"). The paper's scheduler needs exactly
// three queue capabilities: insert a keyed element, extract the minimum,
// and remove an arbitrary element through a stable handle (a split task
// leaving a sleep queue early, a preempted job being requeued). The four
// container implementations in this directory each provide a different
// cost trade-off for those capabilities; this header adapts all of them
// to one interface so the simulator kernel (sim/kernel.hpp), the
// calibration harness (overhead/calibrate.hpp), and the ablation benches
// can swap backends at runtime without touching scheduler logic.
//
// The KeyedMinQueue contract:
//
//   using key_type / mapped_type / handle;
//   handle push(key, value)          insert; handle stays valid until the
//                                    element is popped or erased, even
//                                    across erases of OTHER elements
//   min_key() / min_value()          smallest-key element (FIFO among ties)
//   pop_min() -> {key, value}        remove the minimum
//   erase(handle) -> value           remove an arbitrary element
//   empty() / size()
//   counters()                       per-instance operation counts — the
//                                    data source for the Table-1
//                                    reproduction and the ablation benches
//   validate()                       structural self-check (tests)
//
// Semantics every backend must honour (the conformance suite
// tests/test_queue_concept.cpp checks them against all four):
//   * min/pop order is total: ascending key, FIFO among equal keys. This
//     is what makes whole simulations bit-identical across backends.
//   * erase(h) never invalidates other handles.
//
// The heap backends get FIFO tie-breaking from an internal insertion
// sequence number folded into the comparison; RbTree and the sorted
// vector provide it structurally (duplicates insert after equals).

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "containers/binomial_heap.hpp"
#include "containers/calendar_queue.hpp"
#include "containers/op_counters.hpp"
#include "containers/pairing_heap.hpp"
#include "containers/rb_tree.hpp"
#include "containers/sorted_vector_queue.hpp"
#include "util/arena.hpp"

namespace sps::containers {

/// The uniform queue contract (see header comment for semantics).
template <typename Q>
concept KeyedMinQueue = requires(Q q, const Q cq, typename Q::key_type k,
                                 typename Q::mapped_type v,
                                 typename Q::handle h) {
  typename Q::key_type;
  typename Q::mapped_type;
  typename Q::handle;
  { q.push(std::move(k), std::move(v)) } -> std::same_as<typename Q::handle>;
  { cq.empty() } -> std::convertible_to<bool>;
  { cq.size() } -> std::convertible_to<std::size_t>;
  { cq.min_key() } -> std::convertible_to<const typename Q::key_type&>;
  { cq.min_value() } -> std::convertible_to<const typename Q::mapped_type&>;
  {
    q.pop_min()
  } -> std::same_as<std::pair<typename Q::key_type, typename Q::mapped_type>>;
  { q.erase(h) } -> std::same_as<typename Q::mapped_type>;
  { cq.counters() } -> std::convertible_to<const QueueOpCounters&>;
  { cq.validate() } -> std::convertible_to<bool>;
};

/// Role concepts of the scheduler. A READY queue is keyed by scheduling
/// priority (fixed priority or absolute deadline); a SLEEP queue by
/// wake-up time. Structurally they are the same contract — the roles
/// exist so engine code states which instantiation it expects.
template <typename Q, typename Key, typename Value>
concept ReadyQueueFor = KeyedMinQueue<Q> &&
                        std::same_as<typename Q::key_type, Key> &&
                        std::same_as<typename Q::mapped_type, Value>;

template <typename Q, typename Key, typename Value>
concept SleepQueueFor = ReadyQueueFor<Q, Key, Value>;

// ---------------------------------------------------------------------------
// Backend adapters
// ---------------------------------------------------------------------------

namespace detail {

/// Heap entry carrying the FIFO tie-break sequence number.
template <typename Key, typename Value, typename Extra>
struct SeqEntry {
  Key key;
  std::uint64_t seq = 0;
  Value value;
  [[no_unique_address]] Extra extra{};
};

template <typename Less>
struct SeqEntryLess {
  [[no_unique_address]] Less less{};
  template <typename E>
  bool operator()(const E& a, const E& b) const {
    if (less(a.key, b.key)) return true;
    if (less(b.key, a.key)) return false;
    return a.seq < b.seq;
  }
};

}  // namespace detail

/// BinomialHeap behind the queue concept. The binomial heap relocates
/// VALUES between nodes on erase (bubble-to-root swaps), so raw node
/// pointers are not stable handles; each element therefore owns a Slot
/// box that the heap's relocation hook keeps pointed at the element's
/// current node. Handle = Slot*.
template <typename Key, typename Value, typename Less = std::less<Key>>
class BinomialHeapQueue {
  struct Slot {
    void* node = nullptr;  ///< current BinomialHeap node of this element
  };
  using Entry = detail::SeqEntry<Key, Value, Slot*>;
  struct MoveHooks {
    template <typename E, typename Node>
    static void moved(E& e, Node* n) noexcept {
      e.extra->node = n;
    }
  };
  using Heap =
      BinomialHeap<Entry, detail::SeqEntryLess<Less>, MoveHooks>;

 public:
  using key_type = Key;
  using mapped_type = Value;
  using handle = Slot*;

  BinomialHeapQueue() = default;
  BinomialHeapQueue(const BinomialHeapQueue&) = delete;
  BinomialHeapQueue& operator=(const BinomialHeapQueue&) = delete;
  BinomialHeapQueue(BinomialHeapQueue&&) noexcept = default;

  ~BinomialHeapQueue() {
    // Drain so the slot boxes are returned before their arena goes.
    while (!heap_.empty()) arena_.destroy(heap_.pop().extra);
  }

  handle push(Key key, Value value) {
    Slot* slot = arena_.create();
    heap_.push(Entry{std::move(key), ++seq_, std::move(value), slot});
    ++counters_.pushes;
    return slot;
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] const Key& min_key() const { return heap_.top().key; }
  [[nodiscard]] const Value& min_value() const { return heap_.top().value; }

  std::pair<Key, Value> pop_min() {
    Entry e = heap_.pop();
    arena_.destroy(e.extra);
    ++counters_.pops;
    return {std::move(e.key), std::move(e.value)};
  }

  Value erase(handle h) {
    assert(h != nullptr && h->node != nullptr);
    Entry e = heap_.erase(static_cast<typename Heap::Node*>(h->node));
    assert(e.extra == h);
    arena_.destroy(h);
    ++counters_.erases;
    return std::move(e.value);
  }

  [[nodiscard]] const QueueOpCounters& counters() const { return counters_; }
  [[nodiscard]] bool validate() const { return heap_.validate(); }

 private:
  Heap heap_;
  util::SlabArena<Slot> arena_;
  std::uint64_t seq_ = 0;
  QueueOpCounters counters_;
};

/// PairingHeap behind the queue concept. Pairing-heap nodes never move,
/// so the node pointer itself is the stable handle.
template <typename Key, typename Value, typename Less = std::less<Key>>
class PairingHeapQueue {
  struct NoExtra {};
  using Entry = detail::SeqEntry<Key, Value, NoExtra>;
  using Heap = PairingHeap<Entry, detail::SeqEntryLess<Less>>;

 public:
  using key_type = Key;
  using mapped_type = Value;
  using handle = typename Heap::handle;

  PairingHeapQueue() = default;
  PairingHeapQueue(const PairingHeapQueue&) = delete;
  PairingHeapQueue& operator=(const PairingHeapQueue&) = delete;
  PairingHeapQueue(PairingHeapQueue&&) noexcept = default;

  handle push(Key key, Value value) {
    ++counters_.pushes;
    return heap_.push(Entry{std::move(key), ++seq_, std::move(value)});
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] const Key& min_key() const { return heap_.top().key; }
  [[nodiscard]] const Value& min_value() const { return heap_.top().value; }

  std::pair<Key, Value> pop_min() {
    Entry e = heap_.pop();
    ++counters_.pops;
    return {std::move(e.key), std::move(e.value)};
  }

  Value erase(handle h) {
    assert(h != nullptr);
    Entry e = heap_.erase(h);
    ++counters_.erases;
    return std::move(e.value);
  }

  [[nodiscard]] const QueueOpCounters& counters() const { return counters_; }
  [[nodiscard]] bool validate() const { return heap_.validate(); }

 private:
  Heap heap_;
  std::uint64_t seq_ = 0;
  QueueOpCounters counters_;
};

/// RbTree behind the queue concept. The tree is already a stable-handle
/// multimap with FIFO duplicates (inserts after equal keys, erase by
/// pointer transplanting) — the adapter only adds the counters.
template <typename Key, typename Value, typename Less = std::less<Key>>
class RbTreeQueue {
  using Tree = RbTree<Key, Value, Less>;

 public:
  using key_type = Key;
  using mapped_type = Value;
  using handle = typename Tree::handle;

  RbTreeQueue() = default;
  RbTreeQueue(const RbTreeQueue&) = delete;
  RbTreeQueue& operator=(const RbTreeQueue&) = delete;
  RbTreeQueue(RbTreeQueue&&) noexcept = default;

  handle push(Key key, Value value) {
    ++counters_.pushes;
    return tree_.insert(std::move(key), std::move(value));
  }

  [[nodiscard]] bool empty() const { return tree_.empty(); }
  [[nodiscard]] std::size_t size() const { return tree_.size(); }
  [[nodiscard]] const Key& min_key() const { return tree_.min_key(); }
  [[nodiscard]] const Value& min_value() const { return tree_.min_value(); }

  std::pair<Key, Value> pop_min() {
    ++counters_.pops;
    return tree_.pop_min();
  }

  Value erase(handle h) {
    ++counters_.erases;
    return tree_.erase(h);
  }

  [[nodiscard]] const QueueOpCounters& counters() const { return counters_; }
  [[nodiscard]] bool validate() const { return tree_.validate(); }

 private:
  Tree tree_;
  QueueOpCounters counters_;
};

/// SortedVectorQueue behind the queue concept. The vector moves elements
/// on every insert/erase, so it cannot hand out positional handles; the
/// adapter stores arena-allocated Slot boxes IN the vector (the vector's
/// mapped type is Slot*) and hands those out. Slot pointers survive any
/// amount of element movement. erase(h) relocates the slot through the
/// base container's (key, value)-match erase, which is exact because
/// slot pointers are unique.
///
/// What this costs the contiguity story: the KEYS — which is what the
/// base container's binary searches and memmoves touch — stay inline in
/// the vector; only min_value()/pop_min() chase one pointer into the
/// slot arena. So the ablation still measures contiguous key traffic,
/// plus the one indirection stable handles fundamentally require of a
/// moving container.
template <typename Key, typename Value, typename Less = std::less<Key>>
class SortedVectorStableQueue {
  struct Slot {
    Key key;
    Value value;
  };
  using Base = SortedVectorQueue<Key, Slot*, Less>;

 public:
  using key_type = Key;
  using mapped_type = Value;
  using handle = Slot*;

  SortedVectorStableQueue() = default;
  SortedVectorStableQueue(const SortedVectorStableQueue&) = delete;
  SortedVectorStableQueue& operator=(const SortedVectorStableQueue&) = delete;
  SortedVectorStableQueue(SortedVectorStableQueue&&) noexcept = default;

  ~SortedVectorStableQueue() {
    // Drain so the slot boxes are returned before their arena goes.
    while (!base_.empty()) arena_.destroy(base_.pop_min().second);
  }

  handle push(Key key, Value value) {
    Slot* slot = arena_.create(Slot{key, std::move(value)});
    base_.insert(std::move(key), slot);
    ++counters_.pushes;
    return slot;
  }

  [[nodiscard]] bool empty() const { return base_.empty(); }
  [[nodiscard]] std::size_t size() const { return base_.size(); }
  [[nodiscard]] const Key& min_key() const { return base_.min_key(); }
  [[nodiscard]] const Value& min_value() const {
    return base_.min_value()->value;
  }

  std::pair<Key, Value> pop_min() {
    auto [key, slot] = base_.pop_min();
    std::pair<Key, Value> out{std::move(key), std::move(slot->value)};
    arena_.destroy(slot);
    ++counters_.pops;
    return out;
  }

  Value erase(handle h) {
    assert(h != nullptr);
    const bool found = base_.erase(h->key, h);
    assert(found);
    (void)found;
    Value out = std::move(h->value);
    arena_.destroy(h);
    ++counters_.erases;
    return out;
  }

  [[nodiscard]] const QueueOpCounters& counters() const { return counters_; }
  [[nodiscard]] bool validate() const { return base_.validate(); }

 private:
  Base base_;
  util::SlabArena<Slot> arena_;
  QueueOpCounters counters_;
};

// ---------------------------------------------------------------------------
// Runtime backend selection
// ---------------------------------------------------------------------------

/// Which container implements a scheduler queue. Selected at runtime in
/// SimConfig / GlobalSimConfig / CalibrationConfig; the dispatch helpers
/// below turn the enum into the concrete adapter type.
enum class QueueBackend : std::uint8_t {
  kBinomialHeap,   ///< the paper's ready-queue choice
  kPairingHeap,    ///< LITMUS^RT-style contender
  kRbTree,         ///< the paper's sleep-queue choice
  kSortedVector,   ///< contiguous-memory contender (small N)
  kCalendar,       ///< bucketed calendar queue (event-queue fast path)
};

inline constexpr QueueBackend kAllQueueBackends[] = {
    QueueBackend::kBinomialHeap,
    QueueBackend::kPairingHeap,
    QueueBackend::kRbTree,
    QueueBackend::kSortedVector,
    QueueBackend::kCalendar,
};

[[nodiscard]] constexpr std::string_view to_string(QueueBackend b) {
  switch (b) {
    case QueueBackend::kBinomialHeap: return "binomial";
    case QueueBackend::kPairingHeap: return "pairing";
    case QueueBackend::kRbTree: return "rbtree";
    case QueueBackend::kSortedVector: return "vector";
    case QueueBackend::kCalendar: return "calendar";
  }
  return "?";
}

/// Parse a backend name as spelled by to_string(); returns false on an
/// unknown name (out is untouched).
[[nodiscard]] inline bool ParseQueueBackend(std::string_view name,
                                            QueueBackend& out) {
  for (QueueBackend b : kAllQueueBackends) {
    if (name == to_string(b)) {
      out = b;
      return true;
    }
  }
  return false;
}

/// Adapter type implementing backend B for (Key, Value).
template <QueueBackend B, typename Key, typename Value,
          typename Less = std::less<Key>>
struct QueueBackendSelector;

template <typename K, typename V, typename L>
struct QueueBackendSelector<QueueBackend::kBinomialHeap, K, V, L> {
  using type = BinomialHeapQueue<K, V, L>;
};
template <typename K, typename V, typename L>
struct QueueBackendSelector<QueueBackend::kPairingHeap, K, V, L> {
  using type = PairingHeapQueue<K, V, L>;
};
template <typename K, typename V, typename L>
struct QueueBackendSelector<QueueBackend::kRbTree, K, V, L> {
  using type = RbTreeQueue<K, V, L>;
};
template <typename K, typename V, typename L>
struct QueueBackendSelector<QueueBackend::kSortedVector, K, V, L> {
  using type = SortedVectorStableQueue<K, V, L>;
};
template <typename K, typename V, typename L>
struct QueueBackendSelector<QueueBackend::kCalendar, K, V, L> {
  using type = CalendarQueue<K, V, L>;
};

template <QueueBackend B, typename Key, typename Value,
          typename Less = std::less<Key>>
using QueueOf = typename QueueBackendSelector<B, Key, Value, Less>::type;

/// Call fn with a std::integral_constant<QueueBackend, B> matching the
/// runtime value — the bridge from a config enum to a template
/// instantiation. All callees must return the same type.
template <typename Fn>
decltype(auto) WithQueueBackend(QueueBackend b, Fn&& fn) {
  switch (b) {
    case QueueBackend::kPairingHeap:
      return fn(std::integral_constant<QueueBackend,
                                       QueueBackend::kPairingHeap>{});
    case QueueBackend::kRbTree:
      return fn(
          std::integral_constant<QueueBackend, QueueBackend::kRbTree>{});
    case QueueBackend::kSortedVector:
      return fn(std::integral_constant<QueueBackend,
                                       QueueBackend::kSortedVector>{});
    case QueueBackend::kCalendar:
      return fn(
          std::integral_constant<QueueBackend, QueueBackend::kCalendar>{});
    case QueueBackend::kBinomialHeap:
    default:
      return fn(std::integral_constant<QueueBackend,
                                       QueueBackend::kBinomialHeap>{});
  }
}

// Every adapter must model the contract, for every plausible role.
static_assert(KeyedMinQueue<BinomialHeapQueue<std::uint64_t, void*>>);
static_assert(KeyedMinQueue<PairingHeapQueue<std::uint64_t, void*>>);
static_assert(KeyedMinQueue<RbTreeQueue<std::uint64_t, void*>>);
static_assert(KeyedMinQueue<SortedVectorStableQueue<std::uint64_t, void*>>);
static_assert(KeyedMinQueue<CalendarQueue<std::uint64_t, void*>>);

}  // namespace sps::containers
