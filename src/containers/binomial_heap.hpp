#pragma once
// Binomial heap — the ready-queue data structure of the semi-partitioned
// scheduler (Zhang/Guan/Yi, PPES 2011, Section 2: "The ready queue is
// implemented by a binomial heap").
//
// A min-ordered binomial heap: the element for which `Compare(a, b)` is
// true against every other element b is at the top. The scheduler
// instantiates this with "higher scheduling priority first", so `top()` is
// the task the core must run next.
//
// Operations and their costs (n = queue size):
//   push        O(log n) worst case
//   top         O(log n)
//   pop         O(log n)
//   erase       O(log n)   (arbitrary element, via its handle)
//   merge       O(log n)
//
// Handles: `push` returns a stable `handle` identifying the element. The
// heap never moves *nodes*; `erase` bubbles the stored value to the root of
// its tree by swapping values between nodes, and invokes the `Hooks::moved`
// customization point for every value that changes node, so callers that
// track handles inside their elements stay consistent. The default Hooks is
// a no-op (handles of elements displaced by `erase` are then invalidated,
// which is fine for callers that only erase the element they hold a handle
// to and otherwise use push/pop).

#include <cassert>
#include <cstddef>
#include <functional>
#include <utility>

#include "util/arena.hpp"

namespace sps::containers {

/// Default (no-op) relocation hooks for BinomialHeap.
struct NullHeapHooks {
  template <typename T, typename Node>
  static void moved(T& /*value*/, Node* /*new_node*/) noexcept {}
};

template <typename T, typename Compare = std::less<T>,
          typename Hooks = NullHeapHooks>
class BinomialHeap {
 public:
  struct Node {
    T value;
    Node* parent = nullptr;
    Node* child = nullptr;    // leftmost (highest-degree) child
    Node* sibling = nullptr;  // next root in root list / next child
    unsigned degree = 0;

    explicit Node(T v) : value(std::move(v)) {}
  };

  /// Stable identifier for a pushed element (see class comment).
  using handle = Node*;

  BinomialHeap() = default;
  explicit BinomialHeap(Compare cmp) : cmp_(std::move(cmp)) {}

  BinomialHeap(const BinomialHeap&) = delete;
  BinomialHeap& operator=(const BinomialHeap&) = delete;

  BinomialHeap(BinomialHeap&& other) noexcept
      : head_(std::exchange(other.head_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        cmp_(std::move(other.cmp_)),
        arena_(std::move(other.arena_)) {}

  BinomialHeap& operator=(BinomialHeap&& other) noexcept {
    if (this != &other) {
      clear();
      head_ = std::exchange(other.head_, nullptr);
      size_ = std::exchange(other.size_, 0);
      cmp_ = std::move(other.cmp_);
      arena_ = std::move(other.arena_);
    }
    return *this;
  }

  ~BinomialHeap() { clear(); }

  [[nodiscard]] bool empty() const noexcept { return head_ == nullptr; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Insert a value; returns a handle usable with erase().
  handle push(T value) {
    Node* n = arena_.create(std::move(value));
    Hooks::moved(n->value, n);
    head_ = merge_root_lists(head_, n);
    consolidate();
    ++size_;
    return n;
  }

  /// Highest-priority element (the one Compare orders before all others).
  /// Precondition: !empty().
  [[nodiscard]] const T& top() const {
    assert(!empty());
    return find_min()->value;
  }

  [[nodiscard]] handle top_handle() const {
    assert(!empty());
    return find_min();
  }

  /// Remove and return the highest-priority element. Precondition: !empty().
  T pop() {
    assert(!empty());
    return remove_root(find_min());
  }

  /// Remove an arbitrary element by handle. Handles of *other* elements are
  /// kept valid through the Hooks::moved customization point.
  T erase(handle h) {
    assert(h != nullptr);
    Node* root = bubble_to_root(h);
    return remove_root(root);
  }

  /// Merge another heap into this one; `other` is left empty.
  void merge(BinomialHeap& other) {
    if (this == &other || other.empty()) return;
    head_ = merge_root_lists(head_, other.head_);
    size_ += other.size_;
    other.head_ = nullptr;
    other.size_ = 0;
    consolidate();
  }

  void clear() noexcept {
    destroy_tree_list(head_);
    head_ = nullptr;
    size_ = 0;
  }

  /// Structural self-check used by the test suite. Verifies:
  ///  - root list strictly increasing in degree,
  ///  - every tree is a valid binomial tree of its degree,
  ///  - heap order (parent ordered not-after child) holds everywhere,
  ///  - node count equals size().
  [[nodiscard]] bool validate() const {
    std::size_t counted = 0;
    int last_degree = -1;
    for (Node* r = head_; r != nullptr; r = r->sibling) {
      if (static_cast<int>(r->degree) <= last_degree) return false;
      last_degree = static_cast<int>(r->degree);
      if (r->parent != nullptr) return false;
      if (!validate_tree(r, r->degree, counted)) return false;
    }
    return counted == size_;
  }

 private:
  [[nodiscard]] Node* find_min() const {
    Node* best = head_;
    for (Node* r = head_->sibling; r != nullptr; r = r->sibling) {
      if (cmp_(r->value, best->value)) best = r;
    }
    return best;
  }

  /// Detach `root` from the root list, reinsert its children, free the
  /// node, and return its value.
  T remove_root(Node* root) {
    detach_root(root);
    absorb_children(root);
    T out = std::move(root->value);
    arena_.destroy(root);
    --size_;
    return out;
  }

  /// Merge two root lists by non-decreasing degree (no linking yet).
  static Node* merge_root_lists(Node* a, Node* b) noexcept {
    Node* head = nullptr;
    Node** tail = &head;
    while (a != nullptr && b != nullptr) {
      Node*& pick = (a->degree <= b->degree) ? a : b;
      *tail = pick;
      tail = &pick->sibling;
      pick = pick->sibling;
    }
    *tail = (a != nullptr) ? a : b;
    return head;
  }

  /// Make `loser` the child of `winner` (both roots, equal degree).
  static void link(Node* winner, Node* loser) noexcept {
    loser->parent = winner;
    loser->sibling = winner->child;
    winner->child = loser;
    ++winner->degree;
  }

  /// After a root-list merge, combine trees of equal degree so at most one
  /// tree of each degree remains (classic binomial-heap union pass).
  void consolidate() {
    if (head_ == nullptr) return;
    Node* prev = nullptr;
    Node* cur = head_;
    Node* next = cur->sibling;
    while (next != nullptr) {
      const bool three_same = next->sibling != nullptr &&
                              next->sibling->degree == cur->degree;
      if (cur->degree != next->degree || three_same) {
        prev = cur;
        cur = next;
      } else if (!cmp_(next->value, cur->value)) {
        // cur stays a root, next becomes its child.
        cur->sibling = next->sibling;
        link(cur, next);
      } else {
        // next stays a root, cur becomes its child.
        if (prev == nullptr) {
          head_ = next;
        } else {
          prev->sibling = next;
        }
        link(next, cur);
        cur = next;
      }
      next = cur->sibling;
    }
  }

  void detach_root(Node* root) noexcept {
    if (head_ == root) {
      head_ = root->sibling;
      return;
    }
    Node* prev = head_;
    while (prev->sibling != root) prev = prev->sibling;
    prev->sibling = root->sibling;
  }

  /// Reinsert the (reversed) child list of a removed root.
  void absorb_children(Node* root) {
    Node* rev = nullptr;
    Node* c = root->child;
    while (c != nullptr) {
      Node* next = c->sibling;
      c->sibling = rev;
      c->parent = nullptr;
      rev = c;
      c = next;
    }
    root->child = nullptr;
    if (rev != nullptr) {
      head_ = merge_root_lists(head_, rev);
      consolidate();
    }
  }

  /// Swap the node's value with its ancestors' until the value originally
  /// at `n` sits in a root node; returns that root. Values move between
  /// nodes; Hooks::moved keeps external handles honest.
  Node* bubble_to_root(Node* n) {
    while (n->parent != nullptr) {
      Node* p = n->parent;
      using std::swap;
      swap(n->value, p->value);
      Hooks::moved(n->value, n);
      Hooks::moved(p->value, p);
      n = p;
    }
    return n;
  }

  [[nodiscard]] bool validate_tree(const Node* n, unsigned expected_degree,
                                   std::size_t& counted) const {
    if (n->degree != expected_degree) return false;
    ++counted;
    // Children of a degree-k binomial tree have degrees k-1, k-2, ..., 0
    // in left-to-right order.
    unsigned d = expected_degree;
    for (const Node* c = n->child; c != nullptr; c = c->sibling) {
      if (d == 0) return false;
      --d;
      if (c->parent != n) return false;
      if (cmp_(c->value, n->value)) return false;  // heap order violated
      if (!validate_tree(c, d, counted)) return false;
    }
    return d == 0;
  }

  void destroy_tree_list(Node* n) noexcept {
    while (n != nullptr) {
      Node* next = n->sibling;
      destroy_tree_list(n->child);
      arena_.destroy(n);
      n = next;
    }
  }

  Node* head_ = nullptr;
  std::size_t size_ = 0;
  [[no_unique_address]] Compare cmp_{};
  /// Node storage: slab/free-list arena (util/arena.hpp) — push/pop churn
  /// at a steady queue size never touches the global allocator.
  util::SlabArena<Node> arena_;
};

}  // namespace sps::containers
