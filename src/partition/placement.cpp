#include "partition/placement.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <unordered_set>

namespace sps::partition {

Time PlacedTask::total_budget() const {
  Time sum = 0;
  for (const SubtaskPlacement& p : parts) sum += p.budget;
  return sum;
}

std::size_t PlacedTask::part_on(CoreId core) const {
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (parts[i].core == core) return i;
  }
  return SIZE_MAX;
}

std::size_t Partition::entries_on(CoreId core) const {
  std::size_t n = 0;
  for (const PlacedTask& pt : tasks) {
    if (pt.part_on(core) != SIZE_MAX) ++n;
  }
  return n;
}

double Partition::core_utilization(CoreId core) const {
  double u = 0.0;
  for (const PlacedTask& pt : tasks) {
    const std::size_t k = pt.part_on(core);
    if (k == SIZE_MAX) continue;
    u += static_cast<double>(pt.parts[k].budget) /
         static_cast<double>(pt.task.period);
  }
  return u;
}

unsigned Partition::num_split_tasks() const {
  unsigned n = 0;
  for (const PlacedTask& pt : tasks) {
    if (pt.split()) ++n;
  }
  return n;
}

unsigned Partition::migrations_per_period() const {
  unsigned n = 0;
  for (const PlacedTask& pt : tasks) {
    if (pt.split()) n += static_cast<unsigned>(pt.parts.size() - 1);
  }
  return n;
}

bool Partition::valid() const {
  std::vector<std::set<rt::Priority>> prios(num_cores);
  for (const PlacedTask& pt : tasks) {
    if (pt.parts.empty()) return false;
    if (pt.total_budget() != pt.task.wcet) return false;
    std::unordered_set<CoreId> cores_seen;
    Time last_window = 0;
    for (const SubtaskPlacement& p : pt.parts) {
      if (p.core >= num_cores) return false;
      if (p.budget <= 0) return false;
      if (!cores_seen.insert(p.core).second) return false;  // dup core
      if (policy == SchedPolicy::kFixedPriority) {
        // FP needs unique per-core priorities.
        if (!prios[p.core].insert(p.local_priority).second) return false;
      } else if (pt.split()) {
        // EDF split parts need strictly increasing window deadlines that
        // end exactly at the task deadline.
        if (p.rel_deadline <= last_window) return false;
        last_window = p.rel_deadline;
      }
    }
    if (policy == SchedPolicy::kEdf && pt.split() &&
        pt.parts.back().rel_deadline != pt.task.deadline) {
      return false;
    }
  }
  return true;
}

std::string Partition::summary() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%u cores, %zu tasks (%u split, %u migrations/period)\n",
                num_cores, tasks.size(), num_split_tasks(),
                migrations_per_period());
  out += buf;
  for (CoreId c = 0; c < num_cores; ++c) {
    std::snprintf(buf, sizeof(buf), "  core %u: U=%.3f, %zu entries:", c,
                  core_utilization(c), entries_on(c));
    out += buf;
    for (const PlacedTask& pt : tasks) {
      const std::size_t k = pt.part_on(c);
      if (k == SIZE_MAX) continue;
      if (pt.split()) {
        std::snprintf(buf, sizeof(buf), " tau%u[%zu/%zu,B=%.1fus]",
                      pt.task.id, k + 1, pt.parts.size(),
                      ToMicros(pt.parts[k].budget));
      } else {
        std::snprintf(buf, sizeof(buf), " tau%u", pt.task.id);
      }
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace sps::partition
