#pragma once
// Placement model: the output of every partitioning algorithm and the
// input of both the verifier (verify.hpp) and the scheduler simulator
// (sim/). Captures exactly what the paper's runtime needs per task: which
// core(s) it lives on, the per-core time budget of each subtask (stored in
// task_struct in the paper's kernel patch), and the subtask's priority on
// its core.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "rt/task.hpp"
#include "rt/taskset.hpp"
#include "rt/time.hpp"

namespace sps::partition {

using CoreId = std::uint32_t;

/// Per-core scheduling policy of a partition. The paper's scheduler is
/// fixed-priority (RM); §2 notes the design extends to EDF — the EDF
/// variants live in edf_wm.hpp and the simulator honours the policy.
enum class SchedPolicy {
  kFixedPriority,  ///< jobs ordered by SubtaskPlacement::local_priority
  kEdf,            ///< jobs ordered by absolute (window) deadline
};

/// Priority offset separating "elevated" split subtasks (which must beat
/// every normal task on their core) from normal tasks. Normal tasks use
/// task.priority + kNormalPriorityBase; elevated subtasks use the raw task
/// priority, which is always below this base.
inline constexpr rt::Priority kNormalPriorityBase = 1u << 20;

/// One subtask of a (possibly split) task.
struct SubtaskPlacement {
  CoreId core = 0;
  Time budget = 0;  ///< execution budget on this core; paper: "recording
                    ///< the time budget in the split task's task_struct"
  rt::Priority local_priority = 0;  ///< resolved priority on `core` (FP)
  /// EDF split tasks: this part's window deadline, relative to the TASK's
  /// release (cumulative; the last part's value equals the task deadline).
  /// 0 means "the task's own deadline" (normal tasks, FP partitions).
  Time rel_deadline = 0;
};

/// A task together with its placement. parts.size() == 1 for normal
/// tasks; split tasks execute parts in order, migrating between them.
struct PlacedTask {
  rt::Task task;
  std::vector<SubtaskPlacement> parts;

  [[nodiscard]] bool split() const { return parts.size() > 1; }

  /// Sum of part budgets; valid placements have this equal to task.wcet.
  [[nodiscard]] Time total_budget() const;

  /// Index of the part placed on `core`, or SIZE_MAX.
  [[nodiscard]] std::size_t part_on(CoreId core) const;
};

/// A complete mapping of a task set onto `num_cores` cores.
struct Partition {
  unsigned num_cores = 0;
  SchedPolicy policy = SchedPolicy::kFixedPriority;
  std::vector<PlacedTask> tasks;

  /// Number of entries (normal tasks + subtasks) on a core — the queue
  /// size parameter N of the overhead model.
  [[nodiscard]] std::size_t entries_on(CoreId core) const;

  /// Utilization assigned to a core (subtasks contribute budget/period).
  [[nodiscard]] double core_utilization(CoreId core) const;

  [[nodiscard]] unsigned num_split_tasks() const;

  /// Total number of migrations per hyperperiod-normalized job: subtask
  /// transitions per period summed over split tasks.
  [[nodiscard]] unsigned migrations_per_period() const;

  /// Structural sanity: budgets sum to WCETs, cores in range, split parts
  /// on pairwise distinct cores, per-core priorities unique.
  [[nodiscard]] bool valid() const;

  [[nodiscard]] std::string summary() const;
};

/// Outcome of a partitioning attempt.
struct PartitionResult {
  bool success = false;
  Partition partition;     ///< meaningful only when success
  std::string algorithm;   ///< e.g. "FFD", "WFD", "FP-TS(SPA2)"
  std::string failure_reason;  ///< empty on success
};

}  // namespace sps::partition
