#include "partition/verify.hpp"

#include <algorithm>
#include <cstdio>

#include "analysis/edf.hpp"
#include "analysis/rta.hpp"

namespace sps::partition {

namespace {

analysis::EntryKind KindOf(const PlacedTask& pt, std::size_t part) {
  if (!pt.split()) return analysis::EntryKind::kNormal;
  if (part == 0) return analysis::EntryKind::kBodyFirst;
  if (part + 1 == pt.parts.size()) return analysis::EntryKind::kTail;
  return analysis::EntryKind::kBodyMiddle;
}

/// EDF partitions: per-core processor-demand test over window subtasks,
/// per EDF-WM's original per-window analysis. Split part k is a plain
/// sporadic (B_k, T, window length) task — NO jitter widening: the window
/// reservation bounds the release wandering, and the assume-guarantee
/// induction (edf_wm.hpp header) makes the jitter-free model sound. A
/// release triggered by early budget exhaustion only ever lands AT or
/// BEFORE the window start with the deadline fixed at the window end, and
/// earlier releases strictly shrink the set of (release, deadline) pairs
/// any demand interval can trap. Window satisfaction implies the chain
/// meets the task deadline, so no fixpoint is needed.
PartitionAnalysis AnalyzeEdf(const Partition& p,
                             const overhead::OverheadModel& model) {
  PartitionAnalysis out;
  std::vector<std::size_t> core_n(p.num_cores);
  for (CoreId c = 0; c < p.num_cores; ++c) core_n[c] = p.entries_on(c);

  std::vector<std::vector<analysis::EdfCoreEntry>> cores(p.num_cores);
  for (const PlacedTask& pt : p.tasks) {
    Time window_start = 0;
    for (std::size_t k = 0; k < pt.parts.size(); ++k) {
      const SubtaskPlacement& sp = pt.parts[k];
      const Time window_end =
          sp.rel_deadline > 0 ? sp.rel_deadline : pt.task.deadline;
      analysis::EdfCoreEntry e;
      e.exec = sp.budget;
      e.period = pt.task.period;
      e.deadline = window_end - window_start;
      e.jitter = 0;  // per-window analysis: the reservation bounds wandering
      e.kind = static_cast<int>(KindOf(pt, k));
      if (k + 1 < pt.parts.size()) {
        e.dest_queue_size =
            std::max<std::size_t>(core_n[pt.parts[k + 1].core], 1);
      }
      e.first_core_queue_size =
          std::max<std::size_t>(core_n[pt.parts[0].core], 1);
      e.id = pt.task.id;
      cores[sp.core].push_back(e);
      window_start = window_end;
    }
  }

  out.schedulable = true;
  std::vector<bool> task_ok(p.tasks.size(), true);
  for (CoreId c = 0; c < p.num_cores; ++c) {
    const auto inflated = analysis::InflateEdfCore(cores[c], model);
    const analysis::EdfResult res = analysis::EdfDemandTest(inflated);
    if (!res.schedulable) {
      out.schedulable = false;
      if (out.failure_reason.empty()) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "core %u: EDF demand exceeds supply at %.1fus", c,
                      res.violation_at == 0 ? -1.0
                                            : ToMicros(res.violation_at));
        out.failure_reason = buf;
      }
      // Demand violation implicates every task on the core.
      for (std::size_t ti = 0; ti < p.tasks.size(); ++ti) {
        if (p.tasks[ti].part_on(c) != SIZE_MAX) task_ok[ti] = false;
      }
    }
  }
  for (std::size_t ti = 0; ti < p.tasks.size(); ++ti) {
    const PlacedTask& pt = p.tasks[ti];
    out.verdicts.push_back(TaskVerdict{
        pt.task.id, task_ok[ti],
        task_ok[ti] ? pt.task.deadline : kTimeNever, pt.task.deadline});
  }
  return out;
}

}  // namespace

std::vector<std::vector<analysis::CoreEntry>> BuildCoreEntries(
    const Partition& p, const std::vector<std::vector<Time>>& jitters) {
  std::vector<std::size_t> core_n(p.num_cores);
  for (CoreId c = 0; c < p.num_cores; ++c) core_n[c] = p.entries_on(c);

  std::vector<std::vector<analysis::CoreEntry>> cores(p.num_cores);
  for (std::size_t ti = 0; ti < p.tasks.size(); ++ti) {
    const PlacedTask& pt = p.tasks[ti];
    for (std::size_t k = 0; k < pt.parts.size(); ++k) {
      const SubtaskPlacement& sp = pt.parts[k];
      analysis::CoreEntry e;
      e.exec = sp.budget;
      e.period = pt.task.period;
      e.deadline = pt.task.deadline;
      e.priority = sp.local_priority;
      e.jitter = jitters[ti][k];
      e.kind = KindOf(pt, k);
      if (k + 1 < pt.parts.size()) {
        e.dest_queue_size = std::max<std::size_t>(
            core_n[pt.parts[k + 1].core], 1);
      }
      if (e.kind == analysis::EntryKind::kTail) {
        e.first_core_queue_size =
            std::max<std::size_t>(core_n[pt.parts[0].core], 1);
      }
      e.check = true;
      e.id = pt.task.id;
      cores[sp.core].push_back(e);
    }
  }
  return cores;
}

PartitionAnalysis AnalyzePartition(const Partition& p,
                                   const overhead::OverheadModel& model) {
  PartitionAnalysis out;
  if (!p.valid()) {
    out.failure_reason = "structurally invalid partition";
    return out;
  }
  if (p.policy == SchedPolicy::kEdf) return AnalyzeEdf(p, model);

  // Per-(task, part) jitters, refined by fixpoint iteration.
  std::vector<std::vector<Time>> jitters(p.tasks.size());
  for (std::size_t ti = 0; ti < p.tasks.size(); ++ti) {
    jitters[ti].assign(p.tasks[ti].parts.size(), 0);
  }

  constexpr int kMaxIterations = 32;
  std::vector<std::vector<Time>> responses(p.tasks.size());
  bool converged = false;
  bool diverged = false;

  for (int iter = 0; iter < kMaxIterations && !converged; ++iter) {
    const auto cores = BuildCoreEntries(p, jitters);

    // Inflate each core once, then pull per-entry responses out.
    std::vector<std::vector<analysis::RtaTask>> inflated(p.num_cores);
    for (CoreId c = 0; c < p.num_cores; ++c) {
      inflated[c] = analysis::InflateCore(cores[c], model);
    }
    // Map (task, part) -> (core, index) by re-walking in the same order
    // BuildCoreEntries used.
    std::vector<std::size_t> cursor(p.num_cores, 0);
    for (std::size_t ti = 0; ti < p.tasks.size(); ++ti) {
      responses[ti].assign(p.tasks[ti].parts.size(), 0);
    }
    for (std::size_t ti = 0; ti < p.tasks.size(); ++ti) {
      const PlacedTask& pt = p.tasks[ti];
      for (std::size_t k = 0; k < pt.parts.size(); ++k) {
        const CoreId c = pt.parts[k].core;
        const std::size_t idx = cursor[c]++;
        const Time limit = pt.task.deadline;  // divergence guard
        responses[ti][k] =
            analysis::ResponseTime(inflated[c], idx, limit);
      }
    }

    // Jitter update: J_k = sum of predecessors' responses.
    converged = true;
    for (std::size_t ti = 0; ti < p.tasks.size(); ++ti) {
      const PlacedTask& pt = p.tasks[ti];
      Time acc = 0;
      for (std::size_t k = 0; k < pt.parts.size(); ++k) {
        if (jitters[ti][k] != acc) {
          jitters[ti][k] = acc;
          converged = false;
        }
        if (responses[ti][k] == kTimeNever) {
          acc = kTimeNever;
          break;
        }
        acc = std::min<Time>(kTimeNever, acc + responses[ti][k]);
      }
    }
    // A diverged response never recovers (jitter only grows): bail early.
    bool any_diverged = false;
    for (std::size_t ti = 0; ti < p.tasks.size() && !any_diverged; ++ti) {
      for (Time r : responses[ti]) {
        if (r == kTimeNever) {
          any_diverged = true;
          break;
        }
      }
    }
    if (any_diverged) {
      diverged = true;
      converged = true;  // verdicts below will report the failure
    }
  }

  if (!converged && !diverged) {
    // Jitter fixpoint did not stabilize: reject conservatively.
    out.schedulable = false;
    out.failure_reason = "jitter fixpoint did not converge";
    for (const PlacedTask& pt : p.tasks) {
      out.verdicts.push_back(TaskVerdict{pt.task.id, false, kTimeNever,
                                         pt.task.deadline});
    }
    return out;
  }

  // Verdicts.
  out.schedulable = true;
  for (std::size_t ti = 0; ti < p.tasks.size(); ++ti) {
    const PlacedTask& pt = p.tasks[ti];
    TaskVerdict v;
    v.id = pt.task.id;
    v.deadline = pt.task.deadline;
    const std::size_t last = pt.parts.size() - 1;
    if (responses[ti][last] == kTimeNever ||
        jitters[ti][last] == kTimeNever) {
      v.completion = kTimeNever;
    } else {
      v.completion = responses[ti][last] + jitters[ti][last];
    }
    v.ok = v.completion <= v.deadline;
    // Intermediate subtasks must also complete within the deadline window
    // (they feed the chain).
    for (std::size_t k = 0; k < pt.parts.size(); ++k) {
      if (responses[ti][k] == kTimeNever) v.ok = false;
    }
    if (!v.ok) {
      out.schedulable = false;
      if (out.failure_reason.empty()) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "tau%u misses: completion %.1fus > D %.1fus", v.id,
                      v.completion == kTimeNever ? -1.0
                                                 : ToMicros(v.completion),
                      ToMicros(v.deadline));
        out.failure_reason = buf;
      }
    }
    out.verdicts.push_back(v);
  }
  return out;
}

}  // namespace sps::partition
