#pragma once
// Partitioned fixed-priority bin-packing — the paper's baselines (§4):
// FFD ("first-fit decreasing size") and WFD ("worst-fit decreasing size"),
// plus best-fit and next-fit variants for the ablation.
//
// Tasks are considered in order of decreasing utilization ("size"); each
// task is placed whole on a core chosen by the fit policy, where "fits"
// means the chosen admission test accepts the core's tasks plus the
// candidate. No task is ever split — that is exactly what semi-partitioned
// scheduling relaxes.

#include <cstdint>
#include <string>

#include "analysis/memo.hpp"
#include "overhead/model.hpp"
#include "partition/placement.hpp"
#include "rt/taskset.hpp"

namespace sps::partition {

enum class AdmissionTest {
  kLiuLayland,  ///< sum u <= n(2^{1/n}-1), overhead-oblivious
  kHyperbolic,  ///< prod(u+1) <= 2, overhead-oblivious
  kRta,         ///< exact overhead-aware RTA (the model may be Zero())
};

enum class FitPolicy {
  kFirstFit,  ///< lowest-numbered core that admits
  kBestFit,   ///< admitting core with the highest current utilization
  kWorstFit,  ///< admitting core with the lowest current utilization
  kNextFit,   ///< current core, else move on (never revisits)
};

struct BinPackConfig {
  unsigned num_cores = 4;
  AdmissionTest admission = AdmissionTest::kRta;
  /// Overheads charged by the kRta admission test and the final verifier.
  overhead::OverheadModel model = overhead::OverheadModel::Zero();
  /// Admission-verdict transposition table (analysis/memo.hpp).
  analysis::MemoConfig memo;
};

const char* ToString(FitPolicy p);
const char* ToString(AdmissionTest t);

/// Run decreasing-utilization bin packing with the given fit policy.
/// On success the result's partition has passed the full verifier
/// (verify.hpp) under cfg.model.
PartitionResult BinPackDecreasing(const rt::TaskSet& ts, FitPolicy policy,
                                  const BinPackConfig& cfg);

/// The paper's baselines.
inline PartitionResult Ffd(const rt::TaskSet& ts, const BinPackConfig& cfg) {
  return BinPackDecreasing(ts, FitPolicy::kFirstFit, cfg);
}
inline PartitionResult Wfd(const rt::TaskSet& ts, const BinPackConfig& cfg) {
  return BinPackDecreasing(ts, FitPolicy::kWorstFit, cfg);
}

// ---- incremental placement machinery ---------------------------------------
// The per-core bin state + admission test the offline packer iterates,
// exposed (mirroring partition/edf_wm.hpp's EdfCoreState) so the online
// admission controller can run one fixed-priority step per ADMIT request.

/// One fixed-priority core: resident whole tasks + cached utilization +
/// the incrementally maintained Zobrist hash of the resident set (the
/// memo key half that Commit/RemoveTask keep current in O(1)).
struct FpCoreState {
  std::vector<rt::Task> tasks;
  double utilization = 0.0;
  analysis::MemoKey zobrist;

  void Commit(const rt::Task& t);
  /// Remove the task with this id (if resident); returns true if removed.
  bool RemoveTask(rt::TaskId id);
};

/// Counters of how admission decisions were reached, shared by the EDF
/// and fixed-priority per-core tests (the online bench reports them;
/// the filters are what keep per-admit cost flat). density_accepts is
/// EDF-only.
struct AdmitStats {
  std::uint64_t util_rejects = 0;     ///< O(1): raw utilization > 1
  std::uint64_t density_accepts = 0;  ///< O(n): inflated density <= 1 (EDF)
  std::uint64_t full_tests = 0;       ///< full demand test / RTA / bound

  // Transposition-table counters (analysis/memo.hpp). A memo hit still
  // bumps the decision counter of the stage the cached verdict came
  // from, so util_rejects/density_accepts/full_tests are bit-identical
  // to an uncached run; only these three depend on cache state.
  std::uint64_t memo_hits = 0;    ///< decisions served from the table
  std::uint64_t memo_misses = 0;  ///< lookups that had to compute
  std::uint64_t memo_evicts = 0;  ///< stores displacing a different key

  AdmitStats& operator+=(const AdmitStats& o);
  [[nodiscard]] std::uint64_t decisions() const {
    return util_rejects + density_accepts + full_tests;
  }
};

/// Would `cand` be schedulable on this core under cfg.admission — exactly
/// the offline packer's per-core test (utilization bounds, or the
/// overhead-aware exact RTA with cfg.model charged). Screened by the O(1)
/// utilization filter (U > 1 cannot pass any of the three tests). With an
/// active `memo` context the post-screen verdict is served from /
/// published to the transposition table (decision-identical; the key
/// covers resident hash + candidate + model + test kind).
bool FpCoreAdmits(const FpCoreState& core, const rt::Task& cand,
                  const BinPackConfig& cfg, AdmitStats* stats = nullptr,
                  const analysis::MemoContext* memo = nullptr);

}  // namespace sps::partition
