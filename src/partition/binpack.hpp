#pragma once
// Partitioned fixed-priority bin-packing — the paper's baselines (§4):
// FFD ("first-fit decreasing size") and WFD ("worst-fit decreasing size"),
// plus best-fit and next-fit variants for the ablation.
//
// Tasks are considered in order of decreasing utilization ("size"); each
// task is placed whole on a core chosen by the fit policy, where "fits"
// means the chosen admission test accepts the core's tasks plus the
// candidate. No task is ever split — that is exactly what semi-partitioned
// scheduling relaxes.

#include <string>

#include "overhead/model.hpp"
#include "partition/placement.hpp"
#include "rt/taskset.hpp"

namespace sps::partition {

enum class AdmissionTest {
  kLiuLayland,  ///< sum u <= n(2^{1/n}-1), overhead-oblivious
  kHyperbolic,  ///< prod(u+1) <= 2, overhead-oblivious
  kRta,         ///< exact overhead-aware RTA (the model may be Zero())
};

enum class FitPolicy {
  kFirstFit,  ///< lowest-numbered core that admits
  kBestFit,   ///< admitting core with the highest current utilization
  kWorstFit,  ///< admitting core with the lowest current utilization
  kNextFit,   ///< current core, else move on (never revisits)
};

struct BinPackConfig {
  unsigned num_cores = 4;
  AdmissionTest admission = AdmissionTest::kRta;
  /// Overheads charged by the kRta admission test and the final verifier.
  overhead::OverheadModel model = overhead::OverheadModel::Zero();
};

const char* ToString(FitPolicy p);
const char* ToString(AdmissionTest t);

/// Run decreasing-utilization bin packing with the given fit policy.
/// On success the result's partition has passed the full verifier
/// (verify.hpp) under cfg.model.
PartitionResult BinPackDecreasing(const rt::TaskSet& ts, FitPolicy policy,
                                  const BinPackConfig& cfg);

/// The paper's baselines.
inline PartitionResult Ffd(const rt::TaskSet& ts, const BinPackConfig& cfg) {
  return BinPackDecreasing(ts, FitPolicy::kFirstFit, cfg);
}
inline PartitionResult Wfd(const rt::TaskSet& ts, const BinPackConfig& cfg) {
  return BinPackDecreasing(ts, FitPolicy::kWorstFit, cfg);
}

}  // namespace sps::partition
