#pragma once
// Partition verifier: the single source of truth for whether a placement
// is schedulable under a given overhead model. Every partitioner runs this
// as its final acceptance gate, and the acceptance-ratio experiment (E5)
// counts exactly these verdicts.
//
// Normal tasks: overhead-aware exact RTA on their core (analysis/).
//
// Split tasks: subtask k is released when subtask k-1 exhausts its budget
// on the previous core, so its release wanders within a window bounded by
// the predecessors' worst-case response times. We verify the chain with a
// jitter fixpoint:
//     J_k = sum_{j<k} R_j          (release jitter of subtask k)
//     R_k = RTA on k's core, with every subtask's interference on others
//           computed using its jitter
// iterated until stable; the task meets its deadline iff the last
// subtask's R + J <= D. This is the standard sound treatment of budget-
// triggered migration chains; with OverheadModel::Zero() it degenerates to
// the overhead-oblivious analysis used for the "theoretical" curves.

#include <string>
#include <vector>

#include "analysis/overhead_aware.hpp"
#include "overhead/model.hpp"
#include "partition/placement.hpp"
#include "rt/time.hpp"

namespace sps::partition {

struct TaskVerdict {
  rt::TaskId id = 0;
  bool ok = false;
  /// Worst-case completion of the task (last subtask's R + J for split
  /// tasks), relative to its release.
  Time completion = 0;
  Time deadline = 0;
};

struct PartitionAnalysis {
  bool schedulable = false;
  std::vector<TaskVerdict> verdicts;
  std::string failure_reason;
};

PartitionAnalysis AnalyzePartition(const Partition& p,
                                   const overhead::OverheadModel& model);

/// Build the per-core analysis entries for a partition, with the given
/// per-(task,part) jitters (outer index = task position in p.tasks).
/// Exposed for the partitioners and tests.
std::vector<std::vector<analysis::CoreEntry>> BuildCoreEntries(
    const Partition& p, const std::vector<std::vector<Time>>& jitters);

}  // namespace sps::partition
