#include "partition/spa.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/overhead_aware.hpp"
#include "analysis/rta.hpp"
#include "partition/verify.hpp"

namespace sps::partition {

double HeavyThreshold(std::size_t n) {
  const double theta =
      n == 0 ? analysis::kLiuLaylandLimit : analysis::LiuLaylandBound(n);
  return theta / (1.0 + theta);
}

namespace {

/// Queue-size assumption for remote costs while the final layout is still
/// unknown; the paper's own N=64 anchor. Conservative: the verifier later
/// uses the (smaller or equal) actual sizes.
constexpr std::size_t kConservativeQueueSize = 64;

struct CoreState {
  std::vector<analysis::CoreEntry> entries;
  double utilization = 0.0;
};

class SpaRunner {
 public:
  SpaRunner(const rt::TaskSet& ts, const SpaConfig& cfg)
      : ts_(ts), cfg_(cfg), cores_(cfg.num_cores), parts_(ts.size()) {}

  PartitionResult Run() {
    PartitionResult result;
    result.algorithm = cfg_.preassign_heavy ? "FP-TS(SPA2)" : "FP-TS(SPA1)";
    if (cfg_.split_mode == SplitPriorityMode::kNative) {
      result.algorithm += "/native";
    }
    if (cfg_.fill == FillMode::kLiuLaylandFill) result.algorithm += "/LL";

    // Assignment order: the literal SPA fill processes tasks in
    // decreasing priority order (the utilization-bound proof relies on
    // it); the exact-RTA mode uses decreasing utilization — the SAME
    // order as FFD/WFD — so its whole-task placements coincide with FFD's
    // and splitting strictly adds acceptance on top.
    std::vector<std::size_t> order =
        cfg_.fill == FillMode::kLiuLaylandFill
            ? rt::OrderByPriority(ts_)
            : rt::OrderByDecreasingUtilization(ts_);

    if (cfg_.preassign_heavy && !PreassignHeavy(order, result)) {
      return result;
    }

    if (cfg_.fill == FillMode::kLiuLaylandFill) {
      // Literal SPA fill: one core at a time up to the Liu & Layland
      // threshold, splitting the overflow, never revisiting a core.
      unsigned cursor = 0;
      for (const std::size_t ti : order) {
        if (!PlaceTaskSequential(ti, cursor, result)) return result;
      }
    } else {
      // Exact-RTA mode: whole tasks first-fit over all cores (a strict
      // superset of FFD's options), splitting only genuine overflow.
      for (const std::size_t ti : order) {
        if (!PlaceTaskFirstFit(ti, result)) return result;
      }
    }

    Partition p = Assemble();
    const PartitionAnalysis verdict = AnalyzePartition(p, cfg_.model);
    if (!verdict.schedulable) {
      result.failure_reason = "verifier rejected: " + verdict.failure_reason;
      return result;
    }
    result.success = true;
    result.partition = std::move(p);
    return result;
  }

 private:
  rt::Priority PartPriority(const rt::Task& t) const {
    return cfg_.split_mode == SplitPriorityMode::kElevated
               ? t.priority
               : t.priority + kNormalPriorityBase;
  }

  static rt::Priority NormalPriority(const rt::Task& t) {
    return t.priority + kNormalPriorityBase;
  }

  /// Admission: is core `c` schedulable with `cand` appended? On success
  /// returns the candidate's response time via `resp_out`.
  bool Admits(unsigned c, const analysis::CoreEntry& cand,
              Time* resp_out) const {
    if (cfg_.fill == FillMode::kLiuLaylandFill) {
      const double u = cores_[c].utilization +
                       static_cast<double>(cand.exec) /
                           static_cast<double>(cand.period);
      const std::size_t n = cores_[c].entries.size() + 1;
      if (u > analysis::LiuLaylandBound(n) + 1e-12) return false;
      if (resp_out != nullptr) *resp_out = cand.exec;  // optimistic; the
      // final verifier recomputes real responses.
      return true;
    }
    std::vector<analysis::CoreEntry> probe = cores_[c].entries;
    probe.push_back(cand);
    const analysis::RtaResult res =
        analysis::AnalyzeCoreWithOverheads(probe, cfg_.model);
    if (!res.schedulable) return false;
    if (resp_out != nullptr) *resp_out = res.response.back();
    return true;
  }

  analysis::CoreEntry MakeEntry(const rt::Task& t, Time exec, Time deadline,
                                Time jitter,
                                analysis::EntryKind kind) const {
    analysis::CoreEntry e;
    e.exec = exec;
    e.period = t.period;
    e.deadline = deadline;
    e.jitter = jitter;
    e.kind = kind;
    e.id = t.id;
    e.dest_queue_size = kConservativeQueueSize;
    e.first_core_queue_size = kConservativeQueueSize;
    const bool is_subtask = kind != analysis::EntryKind::kNormal;
    e.priority = is_subtask ? PartPriority(t) : NormalPriority(t);
    return e;
  }

  void Commit(unsigned c, std::size_t ti, const analysis::CoreEntry& e) {
    cores_[c].entries.push_back(e);
    cores_[c].utilization += static_cast<double>(e.exec) /
                             static_cast<double>(e.period);
    parts_[ti].push_back(SubtaskPlacement{c, e.exec, e.priority});
  }

  bool PreassignHeavy(std::vector<std::size_t>& order,
                      PartitionResult& result) {
    const double threshold = cfg_.heavy_threshold > 0.0
                                 ? cfg_.heavy_threshold
                                 : HeavyThreshold(0);
    std::vector<std::size_t> heavy;
    for (const std::size_t ti : order) {
      if (ts_[ti].utilization() > threshold) heavy.push_back(ti);
    }
    if (heavy.empty()) return true;
    // Heaviest first onto the highest-numbered cores.
    std::sort(heavy.begin(), heavy.end(), [&](std::size_t a, std::size_t b) {
      return ts_[a].utilization() > ts_[b].utilization();
    });
    if (heavy.size() > cfg_.num_cores) {
      // SPA2's pre-assignment is impossible; Spa2() falls back to SPA1.
      result.failure_reason = "more heavy tasks than cores";
      return false;
    }
    unsigned core = cfg_.num_cores;
    for (const std::size_t ti : heavy) {
      --core;
      const rt::Task& t = ts_[ti];
      const analysis::CoreEntry e =
          MakeEntry(t, t.wcet, t.deadline, 0, analysis::EntryKind::kNormal);
      if (!Admits(core, e, nullptr)) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "heavy tau%u (u=%.3f) unschedulable alone", t.id,
                      t.utilization());
        result.failure_reason = buf;
        return false;
      }
      Commit(core, ti, e);
    }
    order.erase(std::remove_if(
                    order.begin(), order.end(),
                    [&](std::size_t ti) { return !parts_[ti].empty(); }),
                order.end());
    return true;
  }

  /// Try the whole remainder of task ti on core c (normal task if nothing
  /// was placed yet, tail subtask otherwise).
  bool TryWhole(std::size_t ti, unsigned c, Time remaining,
                Time consumed_resp) {
    const rt::Task& t = ts_[ti];
    const analysis::EntryKind kind = parts_[ti].empty()
                                         ? analysis::EntryKind::kNormal
                                         : analysis::EntryKind::kTail;
    const analysis::CoreEntry e =
        MakeEntry(t, remaining, t.deadline, consumed_resp, kind);
    if (!Admits(c, e, nullptr)) return false;
    Commit(c, ti, e);
    return true;
  }

  /// Largest body budget for task ti that core c admits while leaving the
  /// remainder a fighting chance downstream. Returns 0 if none.
  Time MaxBodyBudget(std::size_t ti, unsigned c, Time remaining,
                     Time consumed_resp, Time* resp_out) {
    const rt::Task& t = ts_[ti];
    const Time max_b = remaining - cfg_.min_budget;
    if (max_b < cfg_.min_budget) return 0;
    const analysis::EntryKind kind = parts_[ti].empty()
                                         ? analysis::EntryKind::kBodyFirst
                                         : analysis::EntryKind::kBodyMiddle;
    Time best = 0;
    Time lo = cfg_.min_budget;
    Time hi = max_b;
    while (lo <= hi) {
      const Time mid_raw = lo + (hi - lo) / 2;
      const Time mid = std::max(
          cfg_.min_budget, mid_raw - mid_raw % cfg_.budget_granularity);
      // Chain reserve: the remainder needs at least (remaining - B) time
      // after this subtask's completion.
      const Time chain_deadline = t.deadline - (remaining - mid);
      const analysis::CoreEntry e =
          MakeEntry(t, mid, chain_deadline, consumed_resp, kind);
      Time resp = 0;
      const bool ok =
          chain_deadline > consumed_resp && Admits(c, e, &resp);
      if (ok) {
        best = mid;
        if (resp_out != nullptr) *resp_out = resp;
        lo = mid + cfg_.budget_granularity;
      } else {
        hi = mid - cfg_.budget_granularity;
      }
    }
    return best;
  }

  void CommitBody(std::size_t ti, unsigned c, Time budget, Time remaining,
                  Time consumed_resp) {
    const rt::Task& t = ts_[ti];
    const analysis::EntryKind kind = parts_[ti].empty()
                                         ? analysis::EntryKind::kBodyFirst
                                         : analysis::EntryKind::kBodyMiddle;
    const analysis::CoreEntry e =
        MakeEntry(t, budget, t.deadline - (remaining - budget),
                  consumed_resp, kind);
    Commit(c, ti, e);
  }

  /// Exact-RTA placement: first-fit the whole task; on overflow, split it
  /// greedily across cores in index order. Strictly dominates FFD: when a
  /// task fits whole somewhere the outcome is first-fit, and splitting
  /// only adds placements FFD does not have.
  bool PlaceTaskFirstFit(std::size_t ti, PartitionResult& result) {
    for (unsigned c = 0; c < cfg_.num_cores; ++c) {
      if (TryWhole(ti, c, ts_[ti].wcet, 0)) return true;
    }
    // Split across cores, largest feasible budget per core.
    Time remaining = ts_[ti].wcet;
    Time consumed_resp = 0;
    for (unsigned c = 0; c < cfg_.num_cores && remaining > 0; ++c) {
      if (!parts_[ti].empty() && TryWhole(ti, c, remaining, consumed_resp)) {
        return true;
      }
      Time resp = 0;
      const Time b =
          MaxBodyBudget(ti, c, remaining, consumed_resp, &resp);
      if (b >= cfg_.min_budget) {
        CommitBody(ti, c, b, remaining, consumed_resp);
        remaining -= b;
        consumed_resp += resp;
      }
    }
    char buf[96];
    std::snprintf(buf, sizeof(buf), "tau%u: ran out of cores", ts_[ti].id);
    result.failure_reason = buf;
    return false;
  }

  /// Literal SPA fill: fill core `cursor` to the utilization threshold,
  /// split the overflow onto the next core, never revisit.
  bool PlaceTaskSequential(std::size_t ti, unsigned& cursor,
                           PartitionResult& result) {
    const rt::Task& t = ts_[ti];
    Time remaining = t.wcet;
    Time consumed_resp = 0;
    while (true) {
      if (cursor >= cfg_.num_cores) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "tau%u: ran out of cores", t.id);
        result.failure_reason = buf;
        return false;
      }
      if (TryWhole(ti, cursor, remaining, consumed_resp)) return true;
      Time resp = 0;
      const Time b =
          MaxBodyBudget(ti, cursor, remaining, consumed_resp, &resp);
      if (b >= cfg_.min_budget) {
        CommitBody(ti, cursor, b, remaining, consumed_resp);
        remaining -= b;
        consumed_resp += resp;
      }
      ++cursor;  // core is full either way; SPA never goes back
    }
  }

  Partition Assemble() const {
    Partition p;
    p.num_cores = cfg_.num_cores;
    for (std::size_t ti = 0; ti < ts_.size(); ++ti) {
      PlacedTask pt;
      pt.task = ts_[ti];
      pt.parts = parts_[ti];
      p.tasks.push_back(std::move(pt));
    }
    return p;
  }

  const rt::TaskSet& ts_;
  const SpaConfig& cfg_;
  std::vector<CoreState> cores_;
  std::vector<std::vector<SubtaskPlacement>> parts_;
};

}  // namespace

PartitionResult SpaPartition(const rt::TaskSet& ts, const SpaConfig& cfg) {
  if (!ts.priorities_assigned()) {
    PartitionResult r;
    r.algorithm = "FP-TS";
    r.failure_reason = "task set has no priority assignment";
    return r;
  }
  SpaRunner runner(ts, cfg);
  PartitionResult r = runner.Run();
  if (!r.success && cfg.preassign_heavy) {
    // SPA2 degrades gracefully to SPA1 when pre-assignment is impossible
    // or counter-productive for this set (SPA2 >= SPA1 by construction).
    SpaConfig spa1 = cfg;
    spa1.preassign_heavy = false;
    SpaRunner fallback(ts, spa1);
    PartitionResult r1 = fallback.Run();
    if (r1.success) {
      r1.algorithm = "FP-TS(SPA2->SPA1)";
      return r1;
    }
  }
  return r;
}

}  // namespace sps::partition
