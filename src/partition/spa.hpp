#pragma once
// FP-TS — semi-partitioned fixed-priority scheduling with task splitting
// (Guan, Stigge, Yi, Yu: "Fixed-priority multiprocessor scheduling with
// Liu & Layland's utilization bound", RTAS 2010 — reference [4] of the
// reproduced paper, which adopts it as its scheduler).
//
// Structure of the SPA algorithms, which this implementation follows:
//
//   * Tasks are assigned in DECREASING priority order (RM: shortest period
//     first), filling one core at a time. A core is "full" when the next
//     task fails the admission test there.
//   * The overflowing task is SPLIT: the largest budget that still keeps
//     the core schedulable stays as a subtask; the remainder moves to the
//     next core, possibly splitting again (a split chain across several
//     cores). The last piece is the TAIL subtask; earlier pieces are BODY
//     subtasks (the paper's runtime terms).
//   * Because assignment is highest-priority-first, a subtask that lands
//     on a fresh core precedes every task assigned to that core later, so
//     split subtasks sit at the top of their cores' priority order — the
//     property the SPA utilization-bound proof relies on. kElevated mode
//     enforces this explicitly (subtasks outrank all normal tasks on their
//     core); kNative keeps raw RM priorities (ablation).
//   * SPA2 additionally PRE-ASSIGNS heavy tasks (utilization above
//     Theta/(1+Theta), Theta = Liu & Layland bound) to dedicated cores,
//     starting from the last core, so heavy tasks are never split — the
//     refinement that lifts SPA1's light-task restriction.
//
// Two fill modes are provided:
//
//   * kLiuLaylandFill reproduces the ORIGINAL SPA fill literally: cores
//     are filled one at a time up to the Liu & Layland utilization
//     threshold, the overflowing task is split, closed cores are never
//     revisited. This is the variant the utilization-bound proof covers.
//
//   * kExactRta (default) is the engineering-strength variant the
//     acceptance experiments use: whole tasks are placed FIRST-FIT over
//     all cores under exact overhead-aware RTA, and only a task that fits
//     NOWHERE whole is split, with per-core budgets sized by binary
//     search. This strictly dominates FFD (same placements plus
//     splitting) — the property the paper's evaluation exhibits — while
//     keeping the paper's runtime split semantics (body budgets, ordered
//     migration, tail return). A literal threshold fill would cap every
//     core at ~69-78% utilization, which an exact test beats by a wide
//     margin; DESIGN.md discusses the substitution.
//
// Every produced partition passes the full verifier (verify.hpp),
// including migration-chain conditions and all run-time overheads, so
// acceptance verdicts are sound in both modes.

#include "overhead/model.hpp"
#include "partition/placement.hpp"
#include "rt/taskset.hpp"

namespace sps::partition {

/// Priority of split subtasks on their host cores.
enum class SplitPriorityMode {
  /// Subtasks outrank every normal task on their core (ordered among
  /// themselves by their tasks' RM priority). Default; matches the SPA
  /// property and keeps migration chains tight.
  kElevated,
  /// Subtasks keep their task's RM priority (ablation).
  kNative,
};

/// How a core is declared full / budgets are sized.
enum class FillMode {
  /// Exact overhead-aware RTA + binary-searched budgets (default).
  kExactRta,
  /// Fill each core to the Liu & Layland utilization threshold, as in the
  /// original SPA1/SPA2 proofs (overhead-oblivious; final verification
  /// still applies the overhead model).
  kLiuLaylandFill,
};

struct SpaConfig {
  unsigned num_cores = 4;
  overhead::OverheadModel model = overhead::OverheadModel::Zero();
  SplitPriorityMode split_mode = SplitPriorityMode::kElevated;
  FillMode fill = FillMode::kExactRta;
  /// SPA2: pre-assign heavy tasks to dedicated cores. Off = SPA1.
  bool preassign_heavy = false;
  /// Heavy threshold; <= 0 selects Theta(inf)/(1+Theta(inf)) ~= 0.4093,
  /// the asymptotic SPA2 threshold.
  double heavy_threshold = 0.0;
  /// Budget binary-search resolution and the minimum sliver worth
  /// creating (avoids micro-subtasks whose overhead exceeds their work).
  Time budget_granularity = Micros(10);
  Time min_budget = Micros(100);
};

/// Run FP-TS (SPA1 when !cfg.preassign_heavy, SPA2 otherwise). On success
/// the partition passed AnalyzePartition under cfg.model.
PartitionResult SpaPartition(const rt::TaskSet& ts, const SpaConfig& cfg);

/// Convenience wrappers.
inline PartitionResult Spa1(const rt::TaskSet& ts, SpaConfig cfg) {
  cfg.preassign_heavy = false;
  return SpaPartition(ts, cfg);
}
inline PartitionResult Spa2(const rt::TaskSet& ts, SpaConfig cfg) {
  cfg.preassign_heavy = true;
  return SpaPartition(ts, cfg);
}

/// The SPA2 heavy-task threshold for a given per-core task count bound.
double HeavyThreshold(std::size_t n);

}  // namespace sps::partition
