#include "partition/edf_wm.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "analysis/edf.hpp"
#include "analysis/overhead_aware.hpp"
#include "partition/verify.hpp"

namespace sps::partition {

namespace {

constexpr std::size_t kConservativeQueueSize = 64;

struct EdfCore {
  std::vector<analysis::EdfCoreEntry> entries;
  double utilization = 0.0;
};

analysis::EdfCoreEntry MakeNormal(const rt::Task& t) {
  analysis::EdfCoreEntry e;
  e.exec = t.wcet;
  e.period = t.period;
  e.deadline = t.deadline;
  e.kind = static_cast<int>(analysis::EntryKind::kNormal);
  e.id = t.id;
  return e;
}

/// Subtask for window j (0-based) of K: released at window start (jitter
/// bound = cumulative earlier windows), due at its window end.
analysis::EdfCoreEntry MakeWindowPart(const rt::Task& t, Time budget,
                                      Time window_start, Time window_len,
                                      bool first, bool last) {
  analysis::EdfCoreEntry e;
  e.exec = budget;
  e.period = t.period;
  e.deadline = window_len;
  e.jitter = window_start;
  e.kind = static_cast<int>(
      last ? analysis::EntryKind::kTail
           : (first ? analysis::EntryKind::kBodyFirst
                    : analysis::EntryKind::kBodyMiddle));
  e.dest_queue_size = kConservativeQueueSize;
  e.first_core_queue_size = kConservativeQueueSize;
  e.id = t.id;
  return e;
}

bool CoreAdmits(const EdfCore& core, const analysis::EdfCoreEntry& cand,
                const overhead::OverheadModel& model) {
  std::vector<analysis::EdfCoreEntry> probe = core.entries;
  probe.push_back(cand);
  const auto inflated = analysis::InflateEdfCore(probe, model);
  return analysis::EdfDemandTest(inflated).schedulable;
}

void Commit(EdfCore& core, const analysis::EdfCoreEntry& e) {
  core.entries.push_back(e);
  core.utilization +=
      static_cast<double>(e.exec) / static_cast<double>(e.period);
}

PartitionResult Finish(std::vector<std::vector<SubtaskPlacement>> parts,
                       const rt::TaskSet& ts, unsigned num_cores,
                       const overhead::OverheadModel& model,
                       std::string algorithm) {
  PartitionResult result;
  result.algorithm = std::move(algorithm);
  Partition p;
  p.num_cores = num_cores;
  p.policy = SchedPolicy::kEdf;
  for (std::size_t ti = 0; ti < ts.size(); ++ti) {
    PlacedTask pt;
    pt.task = ts[ti];
    pt.parts = std::move(parts[ti]);
    p.tasks.push_back(std::move(pt));
  }
  const PartitionAnalysis verdict = AnalyzePartition(p, model);
  if (!verdict.schedulable) {
    result.failure_reason = "verifier rejected: " + verdict.failure_reason;
    return result;
  }
  result.success = true;
  result.partition = std::move(p);
  return result;
}

}  // namespace

PartitionResult EdfBinPack(const rt::TaskSet& ts, FitPolicy policy,
                           const EdfPartitionConfig& cfg) {
  PartitionResult fail;
  fail.algorithm = std::string("EDF-") + ToString(policy);

  std::vector<EdfCore> cores(cfg.num_cores);
  std::vector<std::vector<SubtaskPlacement>> parts(ts.size());
  const auto order = rt::OrderByDecreasingUtilization(ts);
  unsigned next_fit_cursor = 0;

  for (const std::size_t ti : order) {
    const rt::Task& t = ts[ti];
    const analysis::EdfCoreEntry cand = MakeNormal(t);
    int chosen = -1;
    std::vector<unsigned> core_order(cfg.num_cores);
    std::iota(core_order.begin(), core_order.end(), 0u);
    if (policy == FitPolicy::kBestFit || policy == FitPolicy::kWorstFit) {
      std::stable_sort(core_order.begin(), core_order.end(),
                       [&](unsigned a, unsigned b) {
                         return policy == FitPolicy::kBestFit
                                    ? cores[a].utilization >
                                          cores[b].utilization
                                    : cores[a].utilization <
                                          cores[b].utilization;
                       });
    }
    for (const unsigned c : core_order) {
      if (policy == FitPolicy::kNextFit && c < next_fit_cursor) continue;
      if (CoreAdmits(cores[c], cand, cfg.model)) {
        chosen = static_cast<int>(c);
        break;
      }
      if (policy == FitPolicy::kNextFit) ++next_fit_cursor;
    }
    if (chosen < 0) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "tau%u (u=%.3f) fits no core", t.id,
                    t.utilization());
      fail.failure_reason = buf;
      return fail;
    }
    Commit(cores[static_cast<unsigned>(chosen)], cand);
    parts[ti].push_back(SubtaskPlacement{
        static_cast<CoreId>(chosen), t.wcet, 0, t.deadline});
  }
  return Finish(std::move(parts), ts, cfg.num_cores, cfg.model,
                fail.algorithm);
}

PartitionResult EdfWm(const rt::TaskSet& ts, const EdfPartitionConfig& cfg) {
  PartitionResult fail;
  fail.algorithm = "EDF-WM";

  std::vector<EdfCore> cores(cfg.num_cores);
  std::vector<std::vector<SubtaskPlacement>> parts(ts.size());
  const auto order = rt::OrderByDecreasingUtilization(ts);

  for (const std::size_t ti : order) {
    const rt::Task& t = ts[ti];

    // 1) Whole task, first fit.
    bool placed = false;
    const analysis::EdfCoreEntry whole = MakeNormal(t);
    for (unsigned c = 0; c < cfg.num_cores && !placed; ++c) {
      if (CoreAdmits(cores[c], whole, cfg.model)) {
        Commit(cores[c], whole);
        parts[ti].push_back(SubtaskPlacement{c, t.wcet, 0, t.deadline});
        placed = true;
      }
    }
    if (placed) continue;

    // 2) Window splitting: K equal windows, K = 2..m. Window j may land
    //    on any core not already used by this task; take the first core
    //    whose demand test admits the needed budget (or the largest
    //    admissible budget, binary-searched).
    for (unsigned k = 2; k <= cfg.num_cores && !placed; ++k) {
      const Time window = t.deadline / k;
      if (window <= cfg.min_budget) break;
      std::vector<SubtaskPlacement> trial;
      std::vector<analysis::EdfCoreEntry> trial_entries;
      std::vector<unsigned> used;
      Time remaining = t.wcet;
      for (unsigned j = 0; j < k && remaining > 0; ++j) {
        const Time wstart = static_cast<Time>(j) * window;
        const Time wlen = (j + 1 == k)
                              ? t.deadline - wstart  // absorb rounding
                              : window;
        const bool last_window = (j + 1 == k);
        const Time want = std::min(remaining, wlen);
        Time best = 0;
        unsigned best_core = 0;
        for (unsigned c = 0; c < cfg.num_cores; ++c) {
          if (std::find(used.begin(), used.end(), c) != used.end()) {
            continue;
          }
          // Largest admissible budget on this core for this window.
          Time lo = cfg.min_budget;
          Time hi = want;
          Time got = 0;
          while (lo <= hi) {
            const Time mid_raw = lo + (hi - lo) / 2;
            const Time mid =
                std::max(cfg.min_budget,
                         mid_raw - mid_raw % cfg.budget_granularity);
            const analysis::EdfCoreEntry e = MakeWindowPart(
                t, mid, wstart, wlen, j == 0,
                last_window || mid == remaining);
            if (CoreAdmits(cores[c], e, cfg.model)) {
              got = mid;
              lo = mid + cfg.budget_granularity;
            } else {
              hi = mid - cfg.budget_granularity;
            }
          }
          if (got > best) {
            best = got;
            best_core = c;
            if (best == want) break;  // cannot do better
          }
        }
        if (best < cfg.min_budget) continue;  // this window contributes 0
        const analysis::EdfCoreEntry e =
            MakeWindowPart(t, best, wstart, wlen, j == 0,
                           last_window || best == remaining);
        trial_entries.push_back(e);
        trial.push_back(SubtaskPlacement{best_core, best, 0,
                                         wstart + wlen});
        used.push_back(best_core);
        remaining -= best;
      }
      if (remaining == 0) {
        // Make the final part's window end exactly at the deadline (valid()
        // requires it) and commit everything.
        trial.back().rel_deadline = t.deadline;
        for (std::size_t i = 0; i < trial.size(); ++i) {
          Commit(cores[trial[i].core], trial_entries[i]);
        }
        parts[ti] = std::move(trial);
        placed = true;
      }
    }
    if (!placed) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "tau%u (u=%.3f): no window split fits", t.id,
                    t.utilization());
      fail.failure_reason = buf;
      return fail;
    }
  }
  return Finish(std::move(parts), ts, cfg.num_cores, cfg.model, "EDF-WM");
}

}  // namespace sps::partition
