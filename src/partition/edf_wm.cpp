#include "partition/edf_wm.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "analysis/edf.hpp"
#include "analysis/overhead_aware.hpp"
#include "obs/spans.hpp"
#include "partition/verify.hpp"

namespace sps::partition {

namespace {

constexpr std::size_t kConservativeQueueSize = 64;

PartitionResult Finish(std::vector<std::vector<SubtaskPlacement>> parts,
                       const rt::TaskSet& ts, unsigned num_cores,
                       const overhead::OverheadModel& model,
                       std::string algorithm) {
  PartitionResult result;
  result.algorithm = std::move(algorithm);
  Partition p;
  p.num_cores = num_cores;
  p.policy = SchedPolicy::kEdf;
  for (std::size_t ti = 0; ti < ts.size(); ++ti) {
    PlacedTask pt;
    pt.task = ts[ti];
    pt.parts = std::move(parts[ti]);
    p.tasks.push_back(std::move(pt));
  }
  const PartitionAnalysis verdict = AnalyzePartition(p, model);
  if (!verdict.schedulable) {
    result.failure_reason = "verifier rejected: " + verdict.failure_reason;
    return result;
  }
  result.success = true;
  result.partition = std::move(p);
  return result;
}

}  // namespace

void EdfCoreState::Commit(const analysis::EdfCoreEntry& e) {
  entries.push_back(e);
  utilization +=
      static_cast<double>(e.exec) / static_cast<double>(e.period);
  zobrist ^= analysis::EdfEntryCode(e);
}

std::size_t EdfCoreState::RemoveTask(rt::TaskId id) {
  std::size_t removed = 0;
  for (auto it = entries.begin(); it != entries.end();) {
    if (it->id == id) {
      utilization -=
          static_cast<double>(it->exec) / static_cast<double>(it->period);
      zobrist ^= analysis::EdfEntryCode(*it);
      it = entries.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  if (entries.empty()) utilization = 0.0;  // flush float residue
  return removed;
}

analysis::EdfCoreEntry MakeEdfEntry(const rt::Task& t) {
  analysis::EdfCoreEntry e;
  e.exec = t.wcet;
  e.period = t.period;
  e.deadline = t.deadline;
  e.kind = static_cast<int>(analysis::EntryKind::kNormal);
  e.id = t.id;
  return e;
}

analysis::EdfCoreEntry MakeEdfWindowEntry(const rt::Task& t, Time budget,
                                          Time window_len, bool first,
                                          bool last) {
  analysis::EdfCoreEntry e;
  e.exec = budget;
  e.period = t.period;
  e.deadline = window_len;
  // Tightened per-window analysis (header comment): the window reservation
  // bounds the wandering, so the subtask is a plain sporadic (B, T, D_j)
  // task — no jitter widening of the dbf.
  e.jitter = 0;
  e.kind = static_cast<int>(
      last ? analysis::EntryKind::kTail
           : (first ? analysis::EntryKind::kBodyFirst
                    : analysis::EntryKind::kBodyMiddle));
  e.dest_queue_size = kConservativeQueueSize;
  e.first_core_queue_size = kConservativeQueueSize;
  e.id = t.id;
  return e;
}

bool EdfCoreAdmits(const EdfCoreState& core,
                   const analysis::EdfCoreEntry& cand,
                   const overhead::OverheadModel& model,
                   AdmitStats* stats,
                   const analysis::MemoContext* memo) {
  AdmitStats local;
  AdmitStats& s = stats != nullptr ? *stats : local;
  obs::SpanProfiler* const prof = obs::InstalledProfiler();

  // O(1) reject: raw utilization already over 1 — inflation only adds,
  // and the demand test opens by rejecting U > 1 (same epsilon).
  {
    obs::ScopedSpan span(prof, obs::SpanStage::kUtilScreen);
    const double cand_util =
        static_cast<double>(cand.exec) / static_cast<double>(cand.period);
    if (core.utilization + cand_util > 1.0 + 1e-12) {
      ++s.util_rejects;
      return false;
    }
  }

  // Transposition table: everything past the (never-cached, O(1))
  // utilization screen is a pure function of (resident multiset,
  // candidate, model) — the query key. The cached verdict carries its
  // deciding stage so the density/full counters below stay
  // bit-identical to an uncached run.
  const bool use_memo = memo != nullptr && memo->active();
  analysis::MemoKey qk;
  if (use_memo) {
    obs::ScopedSpan span(prof, obs::SpanStage::kMemoProbe);
    qk = analysis::CombineQuery(core.zobrist, analysis::EdfEntryCode(cand),
                                *memo);
    if (const auto hit = memo->table->Lookup(qk.lo, qk)) {
      ++s.memo_hits;
      obs::TraceAttr(1);  // span attribute: memo hit
      if (hit->via_density) {
        ++s.density_accepts;
      } else {
        ++s.full_tests;
      }
      return hit->admitted;
    }
    ++s.memo_misses;
    obs::TraceAttr(0);  // span attribute: memo miss
  }

  obs::ScopedSpan analysis_span(prof, obs::SpanStage::kAnalysis);
  std::vector<analysis::EdfCoreEntry> probe = core.entries;
  probe.push_back(cand);
  const auto inflated = analysis::InflateEdfCore(probe, model);

  // O(n) accept: for constrained-deadline jitter-free entries, inflated
  // density sum C'/min(D,T) <= 1 implies dbf(t) <= t everywhere, and an
  // inflated utilization strictly below 1 keeps the test off its U==1
  // conservative-cap branch — so the full test would accept.
  bool jitter_free = true;
  double density = 0.0;
  double inflated_util = 0.0;
  for (const analysis::EdfTask& t : inflated) {
    jitter_free = jitter_free && t.jitter == 0;
    const Time d = t.deadline < t.period ? t.deadline : t.period;
    density += static_cast<double>(t.wcet) / static_cast<double>(d);
    inflated_util +=
        static_cast<double>(t.wcet) / static_cast<double>(t.period);
  }
  if (jitter_free && density <= 1.0 && inflated_util < 1.0 - 1e-9) {
    ++s.density_accepts;
    if (use_memo &&
        memo->table->Store(qk.lo, qk,
                           {.admitted = true, .via_density = true})) {
      ++s.memo_evicts;
    }
    return true;
  }

  ++s.full_tests;
  const bool ok = analysis::EdfDemandTest(inflated).schedulable;
  if (use_memo &&
      memo->table->Store(qk.lo, qk,
                         {.admitted = ok, .via_density = false})) {
    ++s.memo_evicts;
  }
  return ok;
}

EdfPlacement PlaceEdfTask(std::vector<EdfCoreState>& cores, const rt::Task& t,
                          std::span<const unsigned> whole_core_order,
                          bool allow_split, const EdfPartitionConfig& cfg,
                          AdmitStats* stats,
                          const analysis::MemoContext* memo) {
  EdfPlacement out;

  // 1) Whole task on the first admitting core of the given order.
  const analysis::EdfCoreEntry whole = MakeEdfEntry(t);
  for (const unsigned c : whole_core_order) {
    ++out.probes;
    if (EdfCoreAdmits(cores[c], whole, cfg.model, stats, memo)) {
      cores[c].Commit(whole);
      out.placed = true;
      out.parts.push_back(
          SubtaskPlacement{static_cast<CoreId>(c), t.wcet, 0, t.deadline});
      return out;
    }
  }
  if (!allow_split) return out;

  // 2) Window splitting: K equal windows, K = 2..m. Window j may land
  //    on any core not already used by this task; take the core granting
  //    the largest admissible budget (binary-searched per core).
  const unsigned num_cores = static_cast<unsigned>(cores.size());
  for (unsigned k = 2; k <= num_cores; ++k) {
    const Time window = t.deadline / k;
    if (window <= cfg.min_budget) break;
    std::vector<SubtaskPlacement> trial;
    std::vector<analysis::EdfCoreEntry> trial_entries;
    std::vector<unsigned> used;
    Time remaining = t.wcet;
    for (unsigned j = 0; j < k && remaining > 0; ++j) {
      const Time wstart = static_cast<Time>(j) * window;
      const Time wlen = (j + 1 == k)
                            ? t.deadline - wstart  // absorb rounding
                            : window;
      const bool last_window = (j + 1 == k);
      const Time want = std::min(remaining, wlen);
      Time best = 0;
      unsigned best_core = 0;
      for (unsigned c = 0; c < num_cores; ++c) {
        if (std::find(used.begin(), used.end(), c) != used.end()) {
          continue;
        }
        ++out.probes;
        // Largest admissible budget on this core for this window.
        Time lo = cfg.min_budget;
        Time hi = want;
        Time got = 0;
        while (lo <= hi) {
          const Time mid_raw = lo + (hi - lo) / 2;
          const Time mid =
              std::max(cfg.min_budget,
                       mid_raw - mid_raw % cfg.budget_granularity);
          const analysis::EdfCoreEntry e = MakeEdfWindowEntry(
              t, mid, wlen, j == 0, last_window || mid == remaining);
          if (EdfCoreAdmits(cores[c], e, cfg.model, stats, memo)) {
            got = mid;
            lo = mid + cfg.budget_granularity;
          } else {
            hi = mid - cfg.budget_granularity;
          }
        }
        if (got > best) {
          best = got;
          best_core = c;
          if (best == want) break;  // cannot do better
        }
      }
      if (best < cfg.min_budget) continue;  // this window contributes 0
      const analysis::EdfCoreEntry e = MakeEdfWindowEntry(
          t, best, wlen, j == 0, last_window || best == remaining);
      trial_entries.push_back(e);
      trial.push_back(SubtaskPlacement{best_core, best, 0, wstart + wlen});
      used.push_back(best_core);
      remaining -= best;
    }
    if (remaining == 0) {
      // Make the final part's window end exactly at the deadline (valid()
      // requires it) and commit everything.
      trial.back().rel_deadline = t.deadline;
      for (std::size_t i = 0; i < trial.size(); ++i) {
        cores[trial[i].core].Commit(trial_entries[i]);
      }
      out.parts = std::move(trial);
      out.placed = true;
      return out;
    }
  }
  return out;
}

PartitionResult EdfBinPack(const rt::TaskSet& ts, FitPolicy policy,
                           const EdfPartitionConfig& cfg) {
  PartitionResult fail;
  fail.algorithm = std::string("EDF-") + ToString(policy);

  std::vector<EdfCoreState> cores(cfg.num_cores);
  std::vector<std::vector<SubtaskPlacement>> parts(ts.size());
  const auto order = rt::OrderByDecreasingUtilization(ts);
  const analysis::MemoContext memo =
      analysis::MakeEdfMemoContext(cfg.memo, cfg.model);
  unsigned next_fit_cursor = 0;

  for (const std::size_t ti : order) {
    const rt::Task& t = ts[ti];
    std::vector<unsigned> core_order(cfg.num_cores);
    std::iota(core_order.begin(), core_order.end(), 0u);
    if (policy == FitPolicy::kBestFit || policy == FitPolicy::kWorstFit) {
      std::stable_sort(core_order.begin(), core_order.end(),
                       [&](unsigned a, unsigned b) {
                         return policy == FitPolicy::kBestFit
                                    ? cores[a].utilization >
                                          cores[b].utilization
                                    : cores[a].utilization <
                                          cores[b].utilization;
                       });
    } else if (policy == FitPolicy::kNextFit) {
      core_order.erase(core_order.begin(),
                       core_order.begin() + next_fit_cursor);
    }
    const EdfPlacement placed = PlaceEdfTask(
        cores, t, core_order, /*allow_split=*/false, cfg, nullptr, &memo);
    if (!placed.placed) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "tau%u (u=%.3f) fits no core", t.id,
                    t.utilization());
      fail.failure_reason = buf;
      return fail;
    }
    if (policy == FitPolicy::kNextFit) {
      // Never revisit cores before the one that admitted.
      next_fit_cursor =
          std::max(next_fit_cursor, placed.parts.front().core);
    }
    parts[ti] = placed.parts;
  }
  return Finish(std::move(parts), ts, cfg.num_cores, cfg.model,
                fail.algorithm);
}

PartitionResult EdfWm(const rt::TaskSet& ts, const EdfPartitionConfig& cfg) {
  PartitionResult fail;
  fail.algorithm = "EDF-WM";

  std::vector<EdfCoreState> cores(cfg.num_cores);
  std::vector<std::vector<SubtaskPlacement>> parts(ts.size());
  const auto order = rt::OrderByDecreasingUtilization(ts);
  const analysis::MemoContext memo =
      analysis::MakeEdfMemoContext(cfg.memo, cfg.model);
  std::vector<unsigned> first_fit(cfg.num_cores);
  std::iota(first_fit.begin(), first_fit.end(), 0u);

  for (const std::size_t ti : order) {
    const rt::Task& t = ts[ti];
    const EdfPlacement placed = PlaceEdfTask(
        cores, t, first_fit, /*allow_split=*/true, cfg, nullptr, &memo);
    if (!placed.placed) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "tau%u (u=%.3f): no window split fits", t.id,
                    t.utilization());
      fail.failure_reason = buf;
      return fail;
    }
    parts[ti] = placed.parts;
  }
  return Finish(std::move(parts), ts, cfg.num_cores, cfg.model, "EDF-WM");
}

}  // namespace sps::partition
