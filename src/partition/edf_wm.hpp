#pragma once
// EDF partitioning — the dynamic-priority counterpart of binpack.hpp and
// spa.hpp, following the paper's remark (§2) that its scheduler design
// extends to EDF-based semi-partitioned algorithms (the Kato & Yamasaki
// line of work: references [5]-[7] of the paper).
//
//   * EdfBinPack: partitioned EDF with decreasing-utilization first/best/
//     worst fit, admission by the exact processor-demand test with the
//     full overhead model charged (analysis/edf.hpp).
//
//   * EdfWm: semi-partitioned EDF with WINDOW-BASED splitting in the
//     style of EDF-WM (Kato et al.): a task that fits nowhere whole has
//     its deadline divided into K equal windows; window j becomes a
//     sporadic (B_j, T, D/K) "subtask" on its own core, released when the
//     previous window's budget is exhausted and due at its window end.
//     Budgets are sized per core by binary search under the demand test;
//     K is grown from 2 to num_cores until the budgets cover C. The
//     runtime semantics are exactly the paper's (body budgets, migration
//     to the next core's ready queue, tail returning to the first core's
//     sleep queue) — only the queue ordering key changes to absolute
//     window deadlines, which the simulator implements as
//     SchedPolicy::kEdf.
//
// Both partitioners gate their result through the EDF partition verifier
// (verify.hpp / AnalyzePartition dispatches on Partition::policy).
//
// Split-window analysis (tightened, ROADMAP item): window j of a split
// task is analyzed as an independent sporadic task (B_j, T, D_j) with NO
// release jitter — EDF-WM's original per-window analysis. Soundness is the
// standard assume-guarantee induction: if every core passes its demand
// test under the window model, then at the earliest hypothetical window
// violation every earlier window was met, so no subtask was ever released
// AFTER its window start; releases at or before the window start with the
// (fixed) window-end deadline only ever contribute LESS demand to any
// interval than the modeled release at the window start. The previous
// treatment (jitter = cumulative earlier windows, widening the dbf) was
// strictly conservative — it double-counted the wandering the window
// reservation already bounds.
//
// The per-task placement step (whole-task fit, then K-window split search)
// is exposed as PlaceEdfTask over EdfCoreState so the ONLINE admission
// controller (online/admission.*) runs the exact same step incrementally —
// the differential guarantee "ADMIT-only replay == offline partition"
// (tests/test_online.cpp) holds by construction.

#include <span>
#include <vector>

#include "analysis/edf.hpp"
#include "analysis/memo.hpp"
#include "overhead/model.hpp"
#include "partition/binpack.hpp"
#include "partition/placement.hpp"
#include "rt/taskset.hpp"

namespace sps::partition {

struct EdfPartitionConfig {
  unsigned num_cores = 4;
  overhead::OverheadModel model = overhead::OverheadModel::Zero();
  /// Budget search resolution / smallest useful sliver (as in SpaConfig).
  Time budget_granularity = Micros(10);
  Time min_budget = Micros(100);
  /// Admission-verdict transposition table (analysis/memo.hpp).
  analysis::MemoConfig memo;
};

/// Partitioned EDF (no splitting) with the given fit policy.
PartitionResult EdfBinPack(const rt::TaskSet& ts, FitPolicy policy,
                           const EdfPartitionConfig& cfg);

/// Semi-partitioned EDF with window-based splitting (EDF-WM style).
PartitionResult EdfWm(const rt::TaskSet& ts, const EdfPartitionConfig& cfg);

// ---- incremental placement machinery ---------------------------------------
// The state + per-task step the offline partitioners iterate, exposed so
// the online admission controller can run one step per ADMIT request and
// reclaim capacity per LEAVE without re-partitioning anything.

/// Analysis state of one EDF core: the resident (uninflated) entries,
/// their cached raw utilization, and the incrementally maintained
/// Zobrist hash of the resident set. The utilization cache makes the
/// O(1) reject filter free; the hash is the memo-key half that
/// Commit/RemoveTask (and AdmissionState::TakeEdf) keep current in O(1)
/// per entry; the entries are the input of the full demand test.
struct EdfCoreState {
  std::vector<analysis::EdfCoreEntry> entries;
  double utilization = 0.0;
  analysis::MemoKey zobrist;

  void Commit(const analysis::EdfCoreEntry& e);
  /// Remove every entry of task `id`; returns how many were removed and
  /// restores the utilization cache.
  std::size_t RemoveTask(rt::TaskId id);
};

/// Would `cand` be schedulable on `core` under `model`? Decision-identical
/// to inflating core+cand and running the demand test, but screened by two
/// filters that settle most requests without it: raw utilization > 1
/// rejects (inflation only adds demand), inflated density <= 1 with total
/// utilization strictly below 1 accepts (the density bound implies
/// dbf(t) <= t at every point, and staying off the U==1 branch keeps the
/// demand test's conservative horizon cap out of play).
/// With an active `memo` context the post-screen verdict (density accept
/// or full demand test, stage recorded) is served from / published to
/// the transposition table — decision- and counter-identical to the
/// uncached path.
bool EdfCoreAdmits(const EdfCoreState& core,
                   const analysis::EdfCoreEntry& cand,
                   const overhead::OverheadModel& model,
                   AdmitStats* stats = nullptr,
                   const analysis::MemoContext* memo = nullptr);

/// Analysis entry for a whole (unsplit) task.
analysis::EdfCoreEntry MakeEdfEntry(const rt::Task& t);

/// Analysis entry for window j of a split task per the tightened
/// per-window analysis (header comment): sporadic (budget, T, window_len),
/// zero jitter. Exposed for the verifier and tests.
analysis::EdfCoreEntry MakeEdfWindowEntry(const rt::Task& t, Time budget,
                                          Time window_len, bool first,
                                          bool last);

/// Outcome of placing one task: its subtask placements (entries already
/// committed into the core states) or placed == false with states
/// untouched.
struct EdfPlacement {
  bool placed = false;
  std::vector<SubtaskPlacement> parts;
  /// Cores probed during the placement walk: whole-task admission tests
  /// plus split-search per-core budget searches. Deterministic (pure
  /// function of the placement inputs); surfaced as the kPlacement span
  /// attribute by the online controller (DESIGN.md §16).
  unsigned probes = 0;
};

/// One EDF-WM placement step: try the task whole on the cores in
/// `whole_core_order` (first admitting core wins), then — if allowed — the
/// K-equal-window split search of EdfWm (K = 2..num cores, largest
/// admissible budget per window, binary-searched per core). Commits into
/// `cores` on success. This IS the loop body of EdfWm()/EdfBinPack(); the
/// online controller calls it per ADMIT.
EdfPlacement PlaceEdfTask(std::vector<EdfCoreState>& cores, const rt::Task& t,
                          std::span<const unsigned> whole_core_order,
                          bool allow_split, const EdfPartitionConfig& cfg,
                          AdmitStats* stats = nullptr,
                          const analysis::MemoContext* memo = nullptr);

}  // namespace sps::partition
