#pragma once
// EDF partitioning — the dynamic-priority counterpart of binpack.hpp and
// spa.hpp, following the paper's remark (§2) that its scheduler design
// extends to EDF-based semi-partitioned algorithms (the Kato & Yamasaki
// line of work: references [5]-[7] of the paper).
//
//   * EdfBinPack: partitioned EDF with decreasing-utilization first/best/
//     worst fit, admission by the exact processor-demand test with the
//     full overhead model charged (analysis/edf.hpp).
//
//   * EdfWm: semi-partitioned EDF with WINDOW-BASED splitting in the
//     style of EDF-WM (Kato et al.): a task that fits nowhere whole has
//     its deadline divided into K equal windows; window j becomes a
//     sporadic (B_j, T, D/K) "subtask" on its own core, released when the
//     previous window's budget is exhausted and due at its window end.
//     Budgets are sized per core by binary search under the demand test;
//     K is grown from 2 to num_cores until the budgets cover C. The
//     runtime semantics are exactly the paper's (body budgets, migration
//     to the next core's ready queue, tail returning to the first core's
//     sleep queue) — only the queue ordering key changes to absolute
//     window deadlines, which the simulator implements as
//     SchedPolicy::kEdf.
//
// Both partitioners gate their result through the EDF partition verifier
// (verify.hpp / AnalyzePartition dispatches on Partition::policy).

#include "overhead/model.hpp"
#include "partition/binpack.hpp"
#include "partition/placement.hpp"
#include "rt/taskset.hpp"

namespace sps::partition {

struct EdfPartitionConfig {
  unsigned num_cores = 4;
  overhead::OverheadModel model = overhead::OverheadModel::Zero();
  /// Budget search resolution / smallest useful sliver (as in SpaConfig).
  Time budget_granularity = Micros(10);
  Time min_budget = Micros(100);
};

/// Partitioned EDF (no splitting) with the given fit policy.
PartitionResult EdfBinPack(const rt::TaskSet& ts, FitPolicy policy,
                           const EdfPartitionConfig& cfg);

/// Semi-partitioned EDF with window-based splitting (EDF-WM style).
PartitionResult EdfWm(const rt::TaskSet& ts, const EdfPartitionConfig& cfg);

}  // namespace sps::partition
