#include "partition/binpack.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/overhead_aware.hpp"
#include "obs/spans.hpp"
#include "partition/verify.hpp"

namespace sps::partition {

const char* ToString(FitPolicy p) {
  switch (p) {
    case FitPolicy::kFirstFit: return "FFD";
    case FitPolicy::kBestFit: return "BFD";
    case FitPolicy::kWorstFit: return "WFD";
    case FitPolicy::kNextFit: return "NFD";
  }
  return "?";
}

const char* ToString(AdmissionTest t) {
  switch (t) {
    case AdmissionTest::kLiuLayland: return "LL";
    case AdmissionTest::kHyperbolic: return "HYP";
    case AdmissionTest::kRta: return "RTA";
  }
  return "?";
}

void FpCoreState::Commit(const rt::Task& t) {
  tasks.push_back(t);
  utilization += t.utilization();
  zobrist ^= analysis::FpTaskCode(t);
}

bool FpCoreState::RemoveTask(rt::TaskId id) {
  for (auto it = tasks.begin(); it != tasks.end(); ++it) {
    if (it->id == id) {
      utilization -= it->utilization();
      zobrist ^= analysis::FpTaskCode(*it);
      tasks.erase(it);
      if (tasks.empty()) utilization = 0.0;  // flush float residue
      return true;
    }
  }
  return false;
}

AdmitStats& AdmitStats::operator+=(const AdmitStats& o) {
  util_rejects += o.util_rejects;
  density_accepts += o.density_accepts;
  full_tests += o.full_tests;
  memo_hits += o.memo_hits;
  memo_misses += o.memo_misses;
  memo_evicts += o.memo_evicts;
  return *this;
}

bool FpCoreAdmits(const FpCoreState& bin, const rt::Task& cand,
                  const BinPackConfig& cfg, AdmitStats* stats,
                  const analysis::MemoContext* memo) {
  AdmitStats local;
  AdmitStats& s = stats != nullptr ? *stats : local;
  obs::SpanProfiler* const prof = obs::InstalledProfiler();
  // O(1) reject: no FP admission test passes a core over utilization 1
  // (LL and hyperbolic bounds are below it; RTA diverges past it for
  // constrained deadlines).
  {
    obs::ScopedSpan span(prof, obs::SpanStage::kUtilScreen);
    if (bin.utilization + cand.utilization() > 1.0 + 1e-12) {
      ++s.util_rejects;
      return false;
    }
  }
  // Transposition table: everything past the (never-cached, O(1)) screen
  // is a pure function of (resident multiset, candidate, model, test
  // kind) — exactly what the query key covers.
  const bool use_memo = memo != nullptr && memo->active();
  analysis::MemoKey qk;
  if (use_memo) {
    obs::ScopedSpan span(prof, obs::SpanStage::kMemoProbe);
    qk = analysis::CombineQuery(bin.zobrist, analysis::FpTaskCode(cand),
                                *memo);
    if (const auto hit = memo->table->Lookup(qk.lo, qk)) {
      ++s.memo_hits;
      obs::TraceAttr(1);  // span attribute: memo hit
      ++s.full_tests;  // the stage the cached verdict came from
      return hit->admitted;
    }
    ++s.memo_misses;
    obs::TraceAttr(0);  // span attribute: memo miss
  }
  obs::ScopedSpan analysis_span(prof, obs::SpanStage::kAnalysis);
  ++s.full_tests;
  const bool ok = [&] {
    if (cfg.admission != AdmissionTest::kRta) {
      std::vector<double> utils;
      utils.reserve(bin.tasks.size() + 1);
      for (const rt::Task& t : bin.tasks) utils.push_back(t.utilization());
      utils.push_back(cand.utilization());
      return cfg.admission == AdmissionTest::kLiuLayland
                 ? analysis::LiuLaylandTest(utils)
                 : analysis::HyperbolicTest(utils);
    }
    // Overhead-aware exact RTA on this core with the candidate added.
    std::vector<analysis::CoreEntry> entries;
    entries.reserve(bin.tasks.size() + 1);
    auto push = [&entries](const rt::Task& t) {
      analysis::CoreEntry e;
      e.exec = t.wcet;
      e.period = t.period;
      e.deadline = t.deadline;
      e.priority = t.priority + kNormalPriorityBase;
      e.kind = analysis::EntryKind::kNormal;
      e.id = t.id;
      entries.push_back(e);
    };
    for (const rt::Task& t : bin.tasks) push(t);
    push(cand);
    return analysis::AnalyzeCoreWithOverheads(entries, cfg.model)
        .schedulable;
  }();
  if (use_memo &&
      memo->table->Store(qk.lo, qk,
                         {.admitted = ok, .via_density = false})) {
    ++s.memo_evicts;
  }
  return ok;
}

PartitionResult BinPackDecreasing(const rt::TaskSet& ts, FitPolicy policy,
                                  const BinPackConfig& cfg) {
  PartitionResult result;
  result.algorithm = std::string(ToString(policy)) + "/" +
                     ToString(cfg.admission);

  std::vector<FpCoreState> bins(cfg.num_cores);
  const std::vector<std::size_t> order = rt::OrderByDecreasingUtilization(ts);
  unsigned next_fit_cursor = 0;
  const analysis::MemoContext memo =
      analysis::MakeFpMemoContext(cfg.memo, cfg.model,
                                  static_cast<int>(cfg.admission));

  for (const std::size_t ti : order) {
    const rt::Task& t = ts[ti];
    int chosen = -1;

    switch (policy) {
      case FitPolicy::kFirstFit: {
        for (unsigned c = 0; c < cfg.num_cores; ++c) {
          if (FpCoreAdmits(bins[c], t, cfg, nullptr, &memo)) {
            chosen = static_cast<int>(c);
            break;
          }
        }
        break;
      }
      case FitPolicy::kNextFit: {
        while (next_fit_cursor < cfg.num_cores) {
          if (FpCoreAdmits(bins[next_fit_cursor], t, cfg, nullptr, &memo)) {
            chosen = static_cast<int>(next_fit_cursor);
            break;
          }
          ++next_fit_cursor;
        }
        break;
      }
      case FitPolicy::kBestFit:
      case FitPolicy::kWorstFit: {
        // Probe cores in utilization order (best fit: fullest first;
        // worst fit: emptiest first), ties by core id for determinism.
        std::vector<unsigned> core_order(cfg.num_cores);
        std::iota(core_order.begin(), core_order.end(), 0u);
        std::stable_sort(
            core_order.begin(), core_order.end(),
            [&](unsigned a, unsigned b) {
              return policy == FitPolicy::kBestFit
                         ? bins[a].utilization > bins[b].utilization
                         : bins[a].utilization < bins[b].utilization;
            });
        for (unsigned c : core_order) {
          if (FpCoreAdmits(bins[c], t, cfg, nullptr, &memo)) {
            chosen = static_cast<int>(c);
            break;
          }
        }
        break;
      }
    }

    if (chosen < 0) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "tau%u (u=%.3f) fits no core", t.id,
                    t.utilization());
      result.failure_reason = buf;
      return result;
    }
    bins[static_cast<unsigned>(chosen)].Commit(t);
  }

  // Assemble the partition (original task order, never split).
  Partition p;
  p.num_cores = cfg.num_cores;
  for (const rt::Task& t : ts) {
    for (unsigned c = 0; c < cfg.num_cores; ++c) {
      const bool here = std::any_of(
          bins[c].tasks.begin(), bins[c].tasks.end(),
          [&](const rt::Task& x) { return x.id == t.id; });
      if (!here) continue;
      PlacedTask pt;
      pt.task = t;
      pt.parts.push_back(SubtaskPlacement{
          c, t.wcet, t.priority + kNormalPriorityBase});
      p.tasks.push_back(std::move(pt));
      break;
    }
  }

  // Final gate: the full verifier must agree (it is the acceptance
  // criterion of the experiments).
  const PartitionAnalysis verdict = AnalyzePartition(p, cfg.model);
  if (!verdict.schedulable &&
      cfg.admission == AdmissionTest::kRta) {
    // Cannot happen: per-core RTA admission equals the verifier for
    // unsplit partitions. Guard anyway.
    result.failure_reason = "verifier rejected: " + verdict.failure_reason;
    return result;
  }
  if (!verdict.schedulable) {
    // Utilization-bound admissions are sufficient tests; the verifier can
    // only be MORE permissive than them when overheads are zero. With a
    // non-zero model the bounds are not overhead-aware, so reject here.
    result.failure_reason = "verifier rejected: " + verdict.failure_reason;
    return result;
  }
  result.success = true;
  result.partition = std::move(p);
  return result;
}

}  // namespace sps::partition
