#pragma once
// Execution tracing for the scheduler simulator: a flat, time-ordered list
// of scheduler-level events. Consumed by the Gantt renderer (gantt.hpp),
// the Figure-1 bench (which prints the annotated overhead timeline), and
// tests that assert on scheduling decisions.

#include <cstdint>
#include <string>
#include <vector>

#include "rt/task.hpp"
#include "rt/time.hpp"

namespace sps::trace {

enum class EventKind : std::uint8_t {
  kRelease,        ///< job released (timer fired, rls overhead begins)
  kStart,          ///< job begins/resumes execution on a core
  kPreempt,        ///< running job preempted (back to ready queue)
  kFinish,         ///< job completed all execution
  kMigrateOut,     ///< body subtask budget exhausted; leaving this core
  kMigrateIn,      ///< subtask arrived on the destination core
  kDeadlineMiss,   ///< job completed after (or never by) its deadline
  kJobShed,        ///< release skipped: previous job still active
  kOverheadBegin,  ///< core starts an overhead segment
  kOverheadEnd,    ///< core finishes an overhead segment
  kIdle,           ///< core went idle
};

/// Which overhead segment an kOverheadBegin/End pair represents —
/// Figure 1's vocabulary.
enum class OverheadKind : std::uint8_t {
  kNone,
  kRls,    ///< release(): sleep-queue delete + body + ready-queue insert
  kSch,    ///< sch(): selection, possible requeue of the preempted task
  kCnt1,   ///< cnt_swth(): context store/load on switch-in
  kCnt2,   ///< cnt_swth() finish path: sleep/ready insert variants
  kCache,  ///< CPMD: working-set reload on resume (charged as execution)
};

const char* ToString(EventKind k);
const char* ToString(OverheadKind k);

struct Event {
  Time time = 0;
  std::uint32_t core = 0;
  EventKind kind = EventKind::kRelease;
  OverheadKind overhead = OverheadKind::kNone;
  rt::TaskId task = 0;
  std::uint64_t job = 0;   ///< per-task job sequence number
  Time duration = 0;       ///< for overhead / run segments where known
};

class Recorder {
 public:
  /// A disabled recorder drops events (zero overhead in big sweeps).
  explicit Recorder(bool enabled = true) : enabled_(enabled) {}

  void record(const Event& e) {
    if (enabled_) events_.push_back(e);
  }

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  void clear() { events_.clear(); }

 private:
  bool enabled_;
  std::vector<Event> events_;
};

/// One line per event, e.g. "[  12.500ms] core1 MIGRATE_IN  tau3 job4".
std::string FormatEvent(const Event& e);

}  // namespace sps::trace
