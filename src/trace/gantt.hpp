#pragma once
// ASCII Gantt rendering of a simulator trace: one row per core, time
// flowing right, task digits for execution, '#' for scheduler overhead,
// '.' for idle. Used by the split_trace example and the Figure-1 bench to
// make migrations visible.

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace sps::trace {

struct GanttOptions {
  Time start = 0;
  Time end = 0;        ///< 0 = last event time
  unsigned columns = 100;
  unsigned num_cores = 0;  ///< 0 = infer from events
};

/// Render the trace as ASCII art. Tasks are labeled by the last digit of
/// their id ('0'-'9', then 'a'-'z' cycling).
std::string RenderGantt(const std::vector<Event>& events,
                        const GanttOptions& opt);

/// Plain listing of every event (FormatEvent per line), optionally
/// restricted to [start, end].
std::string RenderEventLog(const std::vector<Event>& events, Time start = 0,
                           Time end = kTimeNever);

/// Machine-readable CSV (header + one row per event): time_ns, core,
/// kind, overhead, task, job, duration_ns. For offline plotting of
/// simulator traces.
std::string ToCsv(const std::vector<Event>& events);

}  // namespace sps::trace
