#include "trace/trace.hpp"

#include <cstdio>

namespace sps::trace {

const char* ToString(EventKind k) {
  switch (k) {
    case EventKind::kRelease: return "RELEASE";
    case EventKind::kStart: return "START";
    case EventKind::kPreempt: return "PREEMPT";
    case EventKind::kFinish: return "FINISH";
    case EventKind::kMigrateOut: return "MIGRATE_OUT";
    case EventKind::kMigrateIn: return "MIGRATE_IN";
    case EventKind::kDeadlineMiss: return "DEADLINE_MISS";
    case EventKind::kJobShed: return "JOB_SHED";
    case EventKind::kOverheadBegin: return "OVH_BEGIN";
    case EventKind::kOverheadEnd: return "OVH_END";
    case EventKind::kIdle: return "IDLE";
  }
  return "?";
}

const char* ToString(OverheadKind k) {
  switch (k) {
    case OverheadKind::kNone: return "-";
    case OverheadKind::kRls: return "rls";
    case OverheadKind::kSch: return "sch";
    case OverheadKind::kCnt1: return "cnt1";
    case OverheadKind::kCnt2: return "cnt2";
    case OverheadKind::kCache: return "cache";
  }
  return "?";
}

std::string FormatEvent(const Event& e) {
  char buf[160];
  if (e.kind == EventKind::kOverheadBegin ||
      e.kind == EventKind::kOverheadEnd) {
    std::snprintf(buf, sizeof(buf),
                  "[%12.3fms] core%u %-13s %-5s tau%u job%llu (%.1fus)",
                  ToMillis(e.time), e.core, ToString(e.kind),
                  ToString(e.overhead), e.task,
                  static_cast<unsigned long long>(e.job),
                  ToMicros(e.duration));
  } else if (e.kind == EventKind::kIdle) {
    std::snprintf(buf, sizeof(buf), "[%12.3fms] core%u %-13s",
                  ToMillis(e.time), e.core, ToString(e.kind));
  } else {
    std::snprintf(buf, sizeof(buf),
                  "[%12.3fms] core%u %-13s tau%u job%llu",
                  ToMillis(e.time), e.core, ToString(e.kind), e.task,
                  static_cast<unsigned long long>(e.job));
  }
  return buf;
}

}  // namespace sps::trace
