#include "trace/gantt.hpp"

#include <algorithm>
#include <cstdio>
#include <cmath>
#include <map>

namespace sps::trace {

namespace {

char TaskGlyph(rt::TaskId id) {
  const unsigned v = id % 36;
  return v < 10 ? static_cast<char>('0' + v)
                : static_cast<char>('a' + (v - 10));
}

}  // namespace

std::string RenderGantt(const std::vector<Event>& events,
                        const GanttOptions& opt) {
  if (events.empty()) return "(empty trace)\n";

  Time end = opt.end;
  unsigned cores = opt.num_cores;
  for (const Event& e : events) {
    if (opt.end == 0) end = std::max(end, e.time + e.duration);
    if (opt.num_cores == 0) cores = std::max(cores, e.core + 1);
  }
  if (end <= opt.start) return "(empty window)\n";
  const double span = static_cast<double>(end - opt.start);
  const unsigned cols = std::max(10u, opt.columns);

  // Reconstruct per-core activity: walk events keeping the running task
  // and overhead state per core.
  std::vector<std::string> rows(cores, std::string(cols, '.'));
  struct CoreCursor {
    Time seg_start = 0;
    char glyph = 0;  // 0 = nothing active
  };
  std::vector<CoreCursor> cur(cores);

  auto col_of = [&](Time t) -> long {
    const double frac =
        static_cast<double>(t - opt.start) / span;
    return std::lround(frac * (cols - 1));
  };
  auto paint = [&](unsigned core, Time from, Time to, char glyph) {
    if (to < opt.start || from > end || glyph == 0) return;
    const long a = std::clamp<long>(col_of(std::max(from, opt.start)), 0,
                                    cols - 1);
    const long b = std::clamp<long>(col_of(std::min(to, end)), 0, cols - 1);
    for (long i = a; i <= b; ++i) rows[core][static_cast<size_t>(i)] = glyph;
  };

  for (const Event& e : events) {
    if (e.core >= cores) continue;
    CoreCursor& c = cur[e.core];
    switch (e.kind) {
      case EventKind::kStart:
        c.seg_start = e.time;
        c.glyph = TaskGlyph(e.task);
        break;
      case EventKind::kPreempt:
      case EventKind::kFinish:
      case EventKind::kMigrateOut:
      case EventKind::kIdle:
        if (c.glyph != 0) {
          paint(e.core, c.seg_start, e.time, c.glyph);
          c.glyph = 0;
        }
        break;
      case EventKind::kOverheadBegin:
        if (c.glyph != 0) {
          paint(e.core, c.seg_start, e.time, c.glyph);
          c.glyph = 0;
        }
        paint(e.core, e.time, e.time + e.duration, '#');
        break;
      default:
        break;
    }
  }
  // Flush any still-running segments.
  for (unsigned core = 0; core < cores; ++core) {
    if (cur[core].glyph != 0) {
      paint(core, cur[core].seg_start, end, cur[core].glyph);
    }
  }

  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "time %.3fms .. %.3fms  ('#' overhead, '.' idle)\n",
                ToMillis(opt.start), ToMillis(end));
  out += buf;
  for (unsigned core = 0; core < cores; ++core) {
    std::snprintf(buf, sizeof(buf), "core%u |", core);
    out += buf;
    out += rows[core];
    out += "|\n";
  }
  return out;
}

std::string ToCsv(const std::vector<Event>& events) {
  std::string out = "time_ns,core,kind,overhead,task,job,duration_ns\n";
  char buf[160];
  for (const Event& e : events) {
    std::snprintf(buf, sizeof(buf), "%lld,%u,%s,%s,%u,%llu,%lld\n",
                  static_cast<long long>(e.time), e.core, ToString(e.kind),
                  ToString(e.overhead), e.task,
                  static_cast<unsigned long long>(e.job),
                  static_cast<long long>(e.duration));
    out += buf;
  }
  return out;
}

std::string RenderEventLog(const std::vector<Event>& events, Time start,
                           Time end) {
  std::string out;
  for (const Event& e : events) {
    if (e.time < start || e.time > end) continue;
    out += FormatEvent(e);
    out += '\n';
  }
  return out;
}

}  // namespace sps::trace
