#pragma once
// Discrete-event multicore scheduler simulator — the user-space stand-in
// for the paper's Linux 2.6.32 kernel patch (§2). It executes exactly the
// scheduler design the paper describes:
//
//   * per-core READY queue (priority-ordered; binomial heap by default)
//     and SLEEP queue (keyed by wake-up time; red-black tree by default)
//     — the very container implementations from src/containers. Both are
//     runtime-selectable via SimConfig::ready_backend / sleep_backend
//     (the DESIGN.md §6 ablation runs whole simulations per backend);
//   * normal tasks released / executed / put to sleep on one fixed core;
//   * split tasks carrying a per-core budget: when a BODY subtask's budget
//     runs out, the job is inserted into the NEXT core's ready queue and
//     that core's scheduler is triggered; when the TAIL subtask finishes,
//     the task returns to the sleep queue of the core hosting the FIRST
//     subtask (paper §2, last paragraph, verbatim behaviour);
//   * every scheduler action burns core time per the OverheadModel:
//     rls (sleep-del + release() + ready-add), sch (selection, requeue on
//     preemption), cnt1 (switch-in), cnt2 (three finish cases), and CPMD
//     charged as extra execution when a preempted/migrated job resumes
//     (Figure 1's "cache" segment).
//
// The engine is fully deterministic: integer nanosecond time, seeded
// execution-time model, stable event ordering — and, because every queue
// backend implements the same FIFO-among-ties total order, the results
// are bit-identical across backends (tests/test_queue_concept.cpp).
//
// The event-processing machinery itself (event queue, overhead charging,
// statistics) lives in sim/kernel.hpp and is shared with the global
// engine; this engine contributes the semi-partitioned POLICY.

#include <cstdint>
#include <string>
#include <vector>

#include "containers/queue_traits.hpp"
#include "obs/trace_buffer.hpp"
#include "overhead/model.hpp"
#include "partition/placement.hpp"
#include "rt/time.hpp"
#include "sim/kernel.hpp"
#include "trace/trace.hpp"

namespace sps::sim {

struct SimConfig {
  Time horizon = Millis(1000);
  overhead::OverheadModel overheads = overhead::OverheadModel::Zero();
  ExecModel exec = {};
  ArrivalModel arrivals = {};
  /// Record the scheduler event stream (DESIGN.md §10). The canonical
  /// trace lands in SimResult::trace_events — byte-identical for every
  /// shard count (sharded lanes record into per-lane buffers merged by
  /// the deterministic stamped k-way merge).
  bool record_trace = false;
  /// Record streaming metrics (SimResult::metrics): per-task log2
  /// response/tardiness histograms, per-core busy/overhead/idle wall
  /// accounting. Alloc-free accumulation, shard-invariant like the
  /// trace. obs::BuildMetricsReport turns the result into an exportable
  /// JSON/CSV report.
  bool record_metrics = false;
  /// Stop the run at the first deadline miss (the validation experiments
  /// assert none happen; leaving it false measures all misses). Sharded
  /// runs proceed optimistically and, if any lane observes a miss (the
  /// per-window flag checked at the drain barrier), rerun serially for
  /// the exact serial halt point — identical results either way, and the
  /// expensive path only triggers when the validated property FAILED.
  bool stop_on_first_miss = false;
  /// Queue backends (DESIGN.md §6 ablation): which container implements
  /// each per-core queue. Defaults are the paper's choices.
  containers::QueueBackend ready_backend =
      containers::QueueBackend::kBinomialHeap;
  containers::QueueBackend sleep_backend = containers::QueueBackend::kRbTree;
  /// Backend of the kernel's EVENT queue (the DES throughput hot path;
  /// the calendar queue is the large-core-count contender). The default
  /// backend runs DEVIRTUALIZED (inlined into the kernel); any override
  /// goes through the type-erased runtime slot (DESIGN.md §9).
  containers::QueueBackend event_backend =
      containers::QueueBackend::kBinomialHeap;
  /// Worker threads for the per-core sharded run of ONE simulation
  /// (DESIGN.md §9): 1 = the classic serial event loop, 0 = one thread
  /// per hardware thread, N = exactly N total threads (the caller
  /// counts as one). Results are BIT-IDENTICAL for every value
  /// (tests/test_queue_concept.cpp) — including recorded traces and
  /// metrics (DESIGN.md §10). Only EDF sets past the (now 16-bit)
  /// tie-break width still fall back to serial.
  unsigned shards = 1;
  /// Bench A/B knobs (bench_single_run): force the type-erased event
  /// queue even for the default backend / restore PR-2's per-release
  /// job allocation. Not for normal use.
  bool force_dynamic_event_queue = false;
  bool job_arena = true;
  /// Per-task admission generations, indexed by the task's position in
  /// the partition (ascending id for online-controller partitions;
  /// missing entries = 0). Generation g != 0 salts that task's
  /// exec/arrival RNG streams so a departed-and-readmitted task never
  /// resumes its old incarnation's draw position; generation 0 is
  /// bit-identical to leaving the field empty (DESIGN.md §13).
  std::vector<std::uint32_t> exec_generations;
  /// Streaming trace window (DESIGN.md §15): with record_trace on and a
  /// non-null drain, the canonical trace is delivered to the drain in
  /// stamp-ordered batches DURING the run — byte-identical,
  /// concatenated, to SimResult::trace_events of the full-buffer path
  /// (which stays empty here) — while resident stamped records are
  /// bounded by ~trace_window (asserted via TraceStreamStats). Works
  /// for every shard count; stop_on_first_miss runs take the serial
  /// loop (a miss aborts a sharded attempt AFTER lanes over-processed,
  /// which a streaming consumer could not un-see).
  obs::TraceDrain* trace_drain = nullptr;
  std::size_t trace_window = 1u << 16;
};

/// Run the partition under the config. The canonical trace / metrics
/// land in SimResult (record_trace / record_metrics). A non-null enabled
/// recorder is a convenience alias for record_trace: it receives a copy
/// of SimResult::trace_events after the run.
SimResult Simulate(const partition::Partition& p, const SimConfig& cfg,
                   trace::Recorder* recorder = nullptr);

}  // namespace sps::sim
