#pragma once
// Discrete-event multicore scheduler simulator — the user-space stand-in
// for the paper's Linux 2.6.32 kernel patch (§2). It executes exactly the
// scheduler design the paper describes:
//
//   * per-core READY queue (binomial heap, priority-ordered) and SLEEP
//     queue (red-black tree keyed by wake-up time) — the very container
//     implementations from src/containers;
//   * normal tasks released / executed / put to sleep on one fixed core;
//   * split tasks carrying a per-core budget: when a BODY subtask's budget
//     runs out, the job is inserted into the NEXT core's ready queue and
//     that core's scheduler is triggered; when the TAIL subtask finishes,
//     the task returns to the sleep queue of the core hosting the FIRST
//     subtask (paper §2, last paragraph, verbatim behaviour);
//   * every scheduler action burns core time per the OverheadModel:
//     rls (sleep-del + release() + ready-add), sch (selection, requeue on
//     preemption), cnt1 (switch-in), cnt2 (three finish cases), and CPMD
//     charged as extra execution when a preempted/migrated job resumes
//     (Figure 1's "cache" segment).
//
// The engine is fully deterministic: integer nanosecond time, seeded
// execution-time model, stable event ordering.

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "overhead/model.hpp"
#include "partition/placement.hpp"
#include "rt/time.hpp"
#include "trace/trace.hpp"

namespace sps::sim {

/// How much of its WCET a job actually executes.
struct ExecModel {
  enum class Kind {
    kAlwaysWcet,  ///< every job runs exactly C (worst case; default)
    kFraction,    ///< every job runs fraction * C
    kUniform,     ///< uniform in [lo_fraction, hi_fraction] * C, seeded
  };
  Kind kind = Kind::kAlwaysWcet;
  double fraction = 1.0;
  double lo_fraction = 0.5;
  double hi_fraction = 1.0;
  std::uint64_t seed = 1;
};

/// Inter-arrival behaviour. The task model is sporadic: the period is
/// only a MINIMUM separation. kPeriodic releases exactly every T (the
/// analysis' worst case); kSporadicUniformDelay adds a uniform random
/// slack of up to `max_delay_fraction * T` to each inter-arrival, the
/// usual way to exercise non-critical-instant behaviour.
struct ArrivalModel {
  enum class Kind { kPeriodic, kSporadicUniformDelay };
  Kind kind = Kind::kPeriodic;
  double max_delay_fraction = 0.2;
  std::uint64_t seed = 2;
};

struct SimConfig {
  Time horizon = Millis(1000);
  overhead::OverheadModel overheads = overhead::OverheadModel::Zero();
  ExecModel exec = {};
  ArrivalModel arrivals = {};
  bool record_trace = false;
  /// Stop the run at the first deadline miss (the validation experiments
  /// assert none happen; leaving it false measures all misses).
  bool stop_on_first_miss = false;
};

struct TaskStats {
  rt::TaskId id = 0;
  std::uint64_t released = 0;
  std::uint64_t completed = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t shed = 0;  ///< releases skipped because the job overran
  std::uint64_t preemptions = 0;
  std::uint64_t migrations = 0;
  Time max_response = 0;
  double avg_response = 0.0;  ///< over completed jobs
};

struct CoreStats {
  Time busy_exec = 0;      ///< time spent running task code (incl. CPMD)
  Time overhead_rls = 0;
  Time overhead_sch = 0;
  Time overhead_cnt1 = 0;
  Time overhead_cnt2 = 0;
  Time cpmd_charged = 0;   ///< CPMD portion inside busy_exec
  std::uint64_t context_switches = 0;
};

struct SimResult {
  std::vector<TaskStats> tasks;
  std::vector<CoreStats> cores;
  std::uint64_t total_misses = 0;
  std::uint64_t total_migrations = 0;
  std::uint64_t total_preemptions = 0;
  Time simulated = 0;

  [[nodiscard]] Time total_overhead() const;
  [[nodiscard]] std::string summary() const;
};

/// Run the partition under the config. The trace recorder (optional) gets
/// the full scheduler event stream.
SimResult Simulate(const partition::Partition& p, const SimConfig& cfg,
                   trace::Recorder* recorder = nullptr);

}  // namespace sps::sim
