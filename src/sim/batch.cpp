#include "sim/batch.hpp"

#include <chrono>

#include "util/thread_pool.hpp"

namespace sps::sim {

std::vector<BatchRun> RunConfigSweep(const partition::Partition& p,
                                     const std::vector<BatchVariant>& variants,
                                     const BatchOptions& opt) {
  std::vector<BatchRun> out(variants.size());
  util::ParallelFor(opt.jobs, variants.size(), [&](std::size_t i) {
    const auto t0 = std::chrono::steady_clock::now();
    SimResult r = Simulate(p, variants[i].cfg);
    const auto t1 = std::chrono::steady_clock::now();
    out[i].name = variants[i].name;
    out[i].result = std::move(r);
    out[i].wall_seconds =
        std::chrono::duration<double>(t1 - t0).count();
  });
  return out;
}

std::vector<BatchVariant> OverheadScaleVariants(
    const SimConfig& base, const std::vector<double>& scales) {
  std::vector<BatchVariant> v;
  v.reserve(scales.size());
  for (const double s : scales) {
    BatchVariant bv;
    bv.name = "scale=" + std::to_string(s);
    bv.cfg = base;
    bv.cfg.overheads.scale = s;
    v.push_back(std::move(bv));
  }
  return v;
}

std::vector<BatchVariant> ExecFractionVariants(
    const SimConfig& base, const std::vector<double>& fractions) {
  std::vector<BatchVariant> v;
  v.reserve(fractions.size());
  for (const double f : fractions) {
    BatchVariant bv;
    bv.name = "exec=" + std::to_string(f);
    bv.cfg = base;
    bv.cfg.exec.kind = ExecModel::Kind::kFraction;
    bv.cfg.exec.fraction = f;
    v.push_back(std::move(bv));
  }
  return v;
}

const char* ToString(QueueRole role) {
  switch (role) {
    case QueueRole::kReady: return "ready";
    case QueueRole::kSleep: return "sleep";
    case QueueRole::kEvent: return "event";
  }
  return "?";
}

std::vector<BatchVariant> BackendVariants(const SimConfig& base,
                                          QueueRole role) {
  std::vector<BatchVariant> v;
  for (const containers::QueueBackend b : containers::kAllQueueBackends) {
    BatchVariant bv;
    bv.name = std::string(ToString(role)) + "=" +
              std::string(containers::to_string(b));
    bv.cfg = base;
    switch (role) {
      case QueueRole::kReady: bv.cfg.ready_backend = b; break;
      case QueueRole::kSleep: bv.cfg.sleep_backend = b; break;
      case QueueRole::kEvent: bv.cfg.event_backend = b; break;
    }
    v.push_back(std::move(bv));
  }
  return v;
}

}  // namespace sps::sim
