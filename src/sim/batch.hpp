#pragma once
// Batch-simulation subsystem (DESIGN.md §8): run ONE partition under a
// SWEEP of simulation configs — overhead scales, execution models, queue
// backends — distributing the runs over a worker pool while reusing the
// (expensive) generation and partitioning setup. This is the macroscopic
// driver behind the §6 queue ablation and the overhead-sensitivity
// experiments; the acceptance-ratio harness (exp/acceptance.*) builds on
// the same pool and the same seed-derivation scheme.
//
// Determinism contract: every unit of work owns an independent RNG
// stream derived by DeriveSeed from (base seed, coordinates); no unit
// reads another's state. Results are therefore BIT-IDENTICAL for any
// job count — the serial run is the specification of the parallel one,
// and tests/test_batch_parallel.cpp holds the system to it.

#include <cstdint>
#include <string>
#include <vector>

#include "containers/queue_traits.hpp"
#include "partition/placement.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace sps::sim {

/// Mix (base, a, b) into an independent 64-bit seed (splitmix64-style
/// finalizer). Used as DeriveSeed(seed, point, set) by the acceptance
/// harness and DeriveSeed(seed, variant, rep) by batch sweeps: distinct
/// coordinates give decorrelated streams, and the mapping is pure — the
/// thread that runs a unit never matters. (The implementation lives in
/// util/rng.hpp since PR 3, where the simulation kernel's per-task RNG
/// streams share it; this alias keeps the established call sites.)
[[nodiscard]] inline std::uint64_t DeriveSeed(std::uint64_t base,
                                              std::uint64_t a,
                                              std::uint64_t b) {
  return util::DeriveSeed(base, a, b);
}

/// One named configuration of the sweep.
struct BatchVariant {
  std::string name;
  SimConfig cfg;
};

struct BatchRun {
  std::string name;
  SimResult result;
  double wall_seconds = 0.0;  ///< wall-clock of this variant's Simulate()
};

struct BatchOptions {
  /// Total threads of concurrency (1 = serial in the calling thread,
  /// 0 = one per hardware thread).
  unsigned jobs = 1;
};

/// Simulate `p` under every variant. Output is positionally aligned with
/// `variants` and identical for every job count.
std::vector<BatchRun> RunConfigSweep(const partition::Partition& p,
                                     const std::vector<BatchVariant>& variants,
                                     const BatchOptions& opt = {});

/// Variant grids the experiment drivers sweep. Each helper copies `base`
/// and varies one axis, naming the variant after the value.
std::vector<BatchVariant> OverheadScaleVariants(
    const SimConfig& base, const std::vector<double>& scales);
std::vector<BatchVariant> ExecFractionVariants(
    const SimConfig& base, const std::vector<double>& fractions);

/// Which queue slot a backend sweep varies.
enum class QueueRole { kReady, kSleep, kEvent };
std::vector<BatchVariant> BackendVariants(const SimConfig& base,
                                          QueueRole role);

[[nodiscard]] const char* ToString(QueueRole role);

}  // namespace sps::sim
