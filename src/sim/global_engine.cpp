#include "sim/global_engine.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <queue>
#include <random>
#include <vector>

#include "containers/binomial_heap.hpp"

namespace sps::sim {

namespace {

struct GJob {
  std::size_t task_idx = 0;
  std::uint64_t seq = 0;
  Time release_time = 0;
  Time abs_deadline = 0;
  Time exec_remaining = 0;
  int last_core = -1;        ///< core of the last execution segment
  bool resume_pending = false;  ///< preempted; pays CPMD at next start
};

struct GReadyItem {
  std::uint64_t key = 0;  ///< priority (RM) or absolute deadline (EDF)
  std::uint64_t order = 0;
  GJob* job = nullptr;
};

struct GReadyLess {
  bool operator()(const GReadyItem& a, const GReadyItem& b) const {
    if (a.key != b.key) return a.key < b.key;
    return a.order < b.order;
  }
};

using GReadyQueue = containers::BinomialHeap<GReadyItem, GReadyLess>;

enum class GCoreState { kIdle, kExec, kOvh };

struct GCore {
  GCoreState state = GCoreState::kIdle;
  GJob* running = nullptr;
  GJob* pending_start = nullptr;
  Time busy_until = 0;
  Time seg_start = 0;
  std::uint64_t epoch = 0;
};

enum class GEvKind : std::uint8_t { kTimer, kOvhEnd, kSegEnd };

struct GEv {
  Time t = 0;
  std::uint64_t seq = 0;
  GEvKind kind = GEvKind::kTimer;
  std::uint32_t core = 0;
  std::size_t task_idx = 0;
  std::uint64_t epoch = 0;
};

/// Same-instant ordering: segment completions precede overhead ends
/// precede timers (see the partitioned engine's EvLater for why).
struct GEvLater {
  bool operator()(const GEv& a, const GEv& b) const {
    if (a.t != b.t) return a.t > b.t;
    const auto rank = [](GEvKind k) {
      switch (k) {
        case GEvKind::kSegEnd: return 0;
        case GEvKind::kTimer: return 1;
        case GEvKind::kOvhEnd: return 2;
      }
      return 3;
    };
    const int ra = rank(a.kind);
    const int rb = rank(b.kind);
    if (ra != rb) return ra > rb;
    return a.seq > b.seq;
  }
};

struct GTaskRt {
  bool active = false;
  Time next_release = 0;
  TaskStats stats;
  double response_sum = 0.0;
};

class GlobalEngine {
 public:
  GlobalEngine(const rt::TaskSet& ts, const GlobalSimConfig& cfg,
               trace::Recorder* rec)
      : ts_(ts), cfg_(cfg), rec_(rec), cores_(cfg.num_cores),
        tasks_(ts.size()), rng_(cfg.exec.seed) {
    result_.cores.resize(cfg.num_cores);
    for (std::size_t i = 0; i < ts.size(); ++i) {
      tasks_[i].stats.id = ts[i].id;
    }
    n_queue_ = std::max<std::size_t>(1, ts.size());
  }

  SimResult Run() {
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      Push(GEv{.t = 0, .kind = GEvKind::kTimer, .task_idx = i});
    }
    while (!events_.empty() && !halted_) {
      const GEv ev = events_.top();
      events_.pop();
      if (ev.t > cfg_.horizon) break;
      now_ = ev.t;
      switch (ev.kind) {
        case GEvKind::kTimer: OnTimer(ev.task_idx); break;
        case GEvKind::kOvhEnd: OnOvhEnd(ev.core, ev.epoch); break;
        case GEvKind::kSegEnd: OnSegEnd(ev.core, ev.epoch); break;
      }
    }
    return Finalize();
  }

 private:
  std::uint64_t KeyOf(const GJob* j) const {
    if (cfg_.policy == GlobalPolicy::kGlobalRm) {
      return ts_[j->task_idx].priority;
    }
    return static_cast<std::uint64_t>(j->abs_deadline);
  }

  void Push(GEv e) {
    e.seq = ++ev_seq_;
    events_.push(e);
  }

  void Trace(trace::EventKind k, std::uint32_t core, const GJob* j,
             trace::OverheadKind ovh = trace::OverheadKind::kNone,
             Time dur = 0) {
    if (rec_ == nullptr || !rec_->enabled()) return;
    trace::Event e;
    e.time = now_;
    e.core = core;
    e.kind = k;
    e.overhead = ovh;
    if (j != nullptr) {
      e.task = ts_[j->task_idx].id;
      e.job = j->seq;
    }
    e.duration = dur;
    rec_->record(e);
  }

  Time SampleExec(std::size_t ti) {
    const Time c = ts_[ti].wcet;
    switch (cfg_.exec.kind) {
      case ExecModel::Kind::kAlwaysWcet:
        return c;
      case ExecModel::Kind::kFraction:
        return std::max<Time>(
            1, static_cast<Time>(cfg_.exec.fraction *
                                 static_cast<double>(c)));
      case ExecModel::Kind::kUniform: {
        std::uniform_real_distribution<double> d(cfg_.exec.lo_fraction,
                                                 cfg_.exec.hi_fraction);
        return std::max<Time>(
            1, static_cast<Time>(d(rng_) * static_cast<double>(c)));
      }
    }
    return c;
  }

  void Account(std::uint32_t c, trace::OverheadKind kind, Time dur) {
    CoreStats& s = result_.cores[c];
    switch (kind) {
      case trace::OverheadKind::kRls: s.overhead_rls += dur; break;
      case trace::OverheadKind::kSch: s.overhead_sch += dur; break;
      case trace::OverheadKind::kCnt1: s.overhead_cnt1 += dur; break;
      case trace::OverheadKind::kCnt2: s.overhead_cnt2 += dur; break;
      default: break;
    }
  }

  void Burn(std::uint32_t c, trace::OverheadKind kind, Time cost,
            const GJob* who = nullptr) {
    GCore& core = cores_[c];
    const Time base = std::max(now_, core.busy_until);
    if (cost > 0) {
      if (who == nullptr) {
        who = core.running != nullptr ? core.running : core.pending_start;
      }
      Trace(trace::EventKind::kOverheadBegin, c, who, kind, cost);
      Account(c, kind, cost);
    }
    core.busy_until = base + cost;
    ++core.epoch;
    Push(GEv{.t = core.busy_until, .kind = GEvKind::kOvhEnd, .core = c,
             .epoch = core.epoch});
  }

  void SuspendRunning(std::uint32_t c) {
    GCore& core = cores_[c];
    GJob* j = core.running;
    const Time progress = now_ - core.seg_start;
    j->exec_remaining -= progress;
    result_.cores[c].busy_exec += progress;
    ++core.epoch;
    core.state = GCoreState::kOvh;
  }

  /// The global dispatch rule: fill idle cores with the best ready jobs,
  /// then preempt the worst-running core if the best ready job beats it.
  void Reschedule() {
    // Fill idle cores.
    for (std::uint32_t c = 0; c < cfg_.num_cores && !ready_.empty(); ++c) {
      GCore& core = cores_[c];
      if (core.state == GCoreState::kIdle && core.pending_start == nullptr) {
        const GReadyItem top = ready_.pop();
        core.pending_start = top.job;
        core.state = GCoreState::kOvh;
        ++result_.cores[c].context_switches;
        Burn(c, trace::OverheadKind::kSch,
             cfg_.overheads.sched_overhead(n_queue_, false));
        Burn(c, trace::OverheadKind::kCnt1,
             cfg_.overheads.ctxsw_in_overhead());
      }
    }
    if (ready_.empty()) return;
    // Preempt the worst occupied core while the best ready job beats it.
    while (!ready_.empty()) {
      int worst = -1;
      std::uint64_t worst_key = 0;
      for (std::uint32_t c = 0; c < cfg_.num_cores; ++c) {
        const GCore& core = cores_[c];
        const GJob* occupant = core.running != nullptr ? core.running
                                                       : core.pending_start;
        if (occupant == nullptr) continue;
        const std::uint64_t k = KeyOf(occupant);
        if (worst < 0 || k > worst_key) {
          worst = static_cast<int>(c);
          worst_key = k;
        }
      }
      if (worst < 0) return;  // nothing occupied (cannot happen here)
      if (ready_.top().key >= worst_key) return;  // no preemption
      PreemptCore(static_cast<std::uint32_t>(worst));
    }
  }

  void PreemptCore(std::uint32_t c) {
    GCore& core = cores_[c];
    GJob* victim = core.running != nullptr ? core.running
                                           : core.pending_start;
    if (core.state == GCoreState::kExec) SuspendRunning(c);
    core.running = nullptr;
    core.pending_start = nullptr;
    victim->resume_pending = true;
    Trace(trace::EventKind::kPreempt, c, victim);
    ++tasks_[victim->task_idx].stats.preemptions;
    ++result_.total_preemptions;
    ready_.push(GReadyItem{KeyOf(victim), ++order_seq_, victim});

    const GReadyItem top = ready_.pop();
    core.pending_start = top.job;
    core.state = GCoreState::kOvh;
    ++result_.cores[c].context_switches;
    Burn(c, trace::OverheadKind::kSch,
         cfg_.overheads.sched_overhead(n_queue_, true));
    Burn(c, trace::OverheadKind::kCnt1, cfg_.overheads.ctxsw_in_overhead());
  }

  void OnTimer(std::size_t ti) {
    GTaskRt& tr = tasks_[ti];
    if (tr.active) {
      // Previous job still running: shed this release (overrun), retry
      // next period.
      ++tr.stats.shed;
      tr.next_release += ts_[ti].period;
      Push(GEv{.t = tr.next_release, .kind = GEvKind::kTimer,
               .task_idx = ti});
      return;
    }
    auto owned = std::make_unique<GJob>();
    GJob* j = owned.get();
    jobs_.push_back(std::move(owned));
    j->task_idx = ti;
    j->seq = ++tr.stats.released;
    j->release_time = now_;
    j->abs_deadline = now_ + ts_[ti].deadline;
    j->exec_remaining = SampleExec(ti);
    tr.active = true;
    tr.next_release = now_ + ts_[ti].period;
    Push(GEv{.t = tr.next_release, .kind = GEvKind::kTimer,
             .task_idx = ti});

    // Release interrupt runs on a fixed per-task core.
    const auto irq_core =
        static_cast<std::uint32_t>(ts_[ti].id % cfg_.num_cores);
    Trace(trace::EventKind::kRelease, irq_core, j);
    ready_.push(GReadyItem{KeyOf(j), ++order_seq_, j});
    if (cores_[irq_core].state == GCoreState::kExec) {
      SuspendRunning(irq_core);
      cores_[irq_core].pending_start = cores_[irq_core].running;
      cores_[irq_core].running = nullptr;
    }
    Burn(irq_core, trace::OverheadKind::kRls,
         cfg_.overheads.release_overhead(n_queue_), j);
    Reschedule();
  }

  void OnOvhEnd(std::uint32_t c, std::uint64_t epoch) {
    GCore& core = cores_[c];
    if (epoch != core.epoch || core.state != GCoreState::kOvh) return;
    if (core.pending_start != nullptr) {
      core.running = core.pending_start;
      core.pending_start = nullptr;
      StartSegment(c);
      return;
    }
    core.state = GCoreState::kIdle;
    Trace(trace::EventKind::kIdle, c, nullptr);
    Reschedule();
  }

  void StartSegment(std::uint32_t c) {
    GCore& core = cores_[c];
    GJob* j = core.running;
    if (j->resume_pending) {
      const bool migrated = j->last_core >= 0 &&
                            j->last_core != static_cast<int>(c);
      const Time cpmd = cfg_.overheads.cpmd(migrated);
      if (migrated) {
        ++tasks_[j->task_idx].stats.migrations;
        ++result_.total_migrations;
        Trace(trace::EventKind::kMigrateIn, c, j);
      }
      if (cpmd > 0) {
        j->exec_remaining += cpmd;
        result_.cores[c].cpmd_charged += cpmd;
        Trace(trace::EventKind::kOverheadBegin, c, j,
              trace::OverheadKind::kCache, cpmd);
      }
      j->resume_pending = false;
    }
    j->last_core = static_cast<int>(c);
    core.state = GCoreState::kExec;
    core.seg_start = now_;
    ++core.epoch;
    Push(GEv{.t = now_ + j->exec_remaining, .kind = GEvKind::kSegEnd,
             .core = c, .epoch = core.epoch});
    Trace(trace::EventKind::kStart, c, j);
  }

  void OnSegEnd(std::uint32_t c, std::uint64_t epoch) {
    GCore& core = cores_[c];
    if (epoch != core.epoch || core.state != GCoreState::kExec) return;
    GJob* j = core.running;
    const Time progress = now_ - core.seg_start;
    j->exec_remaining -= progress;
    result_.cores[c].busy_exec += progress;
    assert(j->exec_remaining <= 0);

    GTaskRt& tr = tasks_[j->task_idx];
    Trace(trace::EventKind::kFinish, c, j);
    ++tr.stats.completed;
    const Time response = now_ - j->release_time;
    tr.stats.max_response = std::max(tr.stats.max_response, response);
    tr.response_sum += static_cast<double>(response);
    if (now_ > j->abs_deadline) {
      ++tr.stats.deadline_misses;
      ++result_.total_misses;
      Trace(trace::EventKind::kDeadlineMiss, c, j);
      if (cfg_.stop_on_first_miss) halted_ = true;
    }
    tr.active = false;

    core.running = nullptr;
    core.state = GCoreState::kOvh;
    Burn(c, trace::OverheadKind::kCnt2,
         cfg_.overheads.finish_overhead_normal(n_queue_), j);
    Reschedule();
  }

  SimResult Finalize() {
    result_.simulated = std::min(now_, cfg_.horizon);
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      GTaskRt& tr = tasks_[i];
      if (tr.active) {
        const Time release = tr.next_release - ts_[i].period;
        if (release + ts_[i].deadline <= cfg_.horizon) {
          ++tr.stats.deadline_misses;
          ++result_.total_misses;
        }
      }
      if (tr.stats.completed > 0) {
        tr.stats.avg_response =
            tr.response_sum / static_cast<double>(tr.stats.completed);
      }
      result_.tasks.push_back(tr.stats);
    }
    return std::move(result_);
  }

  const rt::TaskSet& ts_;
  const GlobalSimConfig& cfg_;
  trace::Recorder* rec_;
  std::vector<GCore> cores_;
  std::vector<GTaskRt> tasks_;
  GReadyQueue ready_;
  std::vector<std::unique_ptr<GJob>> jobs_;
  std::priority_queue<GEv, std::vector<GEv>, GEvLater> events_;
  std::mt19937_64 rng_;
  std::size_t n_queue_ = 1;
  Time now_ = 0;
  std::uint64_t ev_seq_ = 0;
  std::uint64_t order_seq_ = 0;
  bool halted_ = false;
  SimResult result_;
};

}  // namespace

SimResult SimulateGlobal(const rt::TaskSet& ts, const GlobalSimConfig& cfg,
                         trace::Recorder* recorder) {
  GlobalEngine engine(ts, cfg, recorder);
  return engine.Run();
}

}  // namespace sps::sim
