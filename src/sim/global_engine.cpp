#include "sim/global_engine.hpp"

#include <algorithm>
#include <cassert>

#include "sim/kernel.hpp"

namespace sps::sim {

namespace {

using containers::QueueBackend;

struct GJob : kernel::JobBase {
  int last_core = -1;           ///< core of the last execution segment
  bool resume_pending = false;  ///< preempted; pays CPMD at next start

  void charge(Time progress) { exec_remaining -= progress; }
};

template <typename SleepQ>
struct GTaskRt : kernel::TaskRunBase<GJob> {
  typename SleepQ::handle sleep_handle = nullptr;
};

/// Global scheduling keeps no per-core queues — both queues are shared.
struct NoPerCoreQueues {};

/// The global scheduling policy, hosted on the shared kernel. One ReadyQ
/// (keyed by RM priority or absolute deadline) and one SleepQ (keyed by
/// next release) serve all cores. EventQ as in the partitioned engine:
/// devirtualized for the default backend combination, type-erased for
/// runtime overrides; Sink likewise (NullSink unless the run records a
/// trace or metrics, DESIGN.md §10). (This engine never shards — its
/// queues are globally shared, the exact coupling semi-partitioning
/// removes.)
template <typename ReadyQ, typename SleepQ, typename EventQ, typename Sink>
class GlobalEngine final
    : public kernel::KernelBase<GlobalEngine<ReadyQ, SleepQ, EventQ, Sink>,
                                GJob, GTaskRt<SleepQ>, NoPerCoreQueues,
                                EventQ, Sink> {
  static_assert(containers::ReadyQueueFor<ReadyQ, std::uint64_t, GJob*>);
  static_assert(containers::SleepQueueFor<SleepQ, Time, std::size_t>);

 public:
  using Base = kernel::KernelBase<GlobalEngine<ReadyQ, SleepQ, EventQ, Sink>,
                                  GJob, GTaskRt<SleepQ>, NoPerCoreQueues,
                                  EventQ, Sink>;
  friend Base;
  using Ev = kernel::Event<GJob>;
  using EvKind = kernel::EvKind;
  using CoreState = kernel::CoreState;
  using Core = typename Base::Core;

  GlobalEngine(const rt::TaskSet& ts, const GlobalSimConfig& cfg)
      : Base(kernel::KernelConfig{.num_cores = cfg.num_cores,
                                  .horizon = cfg.horizon,
                                  .overheads = cfg.overheads,
                                  .exec = cfg.exec,
                                  .arrivals = cfg.arrivals,
                                  .stop_on_first_miss =
                                      cfg.stop_on_first_miss,
                                  .event_backend = cfg.event_backend,
                                  .record_trace = cfg.record_trace,
                                  .record_metrics = cfg.record_metrics},
             ts.size()),
        ts_(ts), gpolicy_(cfg.policy) {
    for (std::size_t i = 0; i < ts.size(); ++i) {
      tasks_[i].stats.id = ts[i].id;
    }
    n_queue_ = std::max<std::size_t>(1, ts.size());
  }

  using Base::Run;

 private:
  using Base::CoreAt;
  using Base::CoreStatsAt;
  using Base::cores_;
  using Base::kcfg_;
  using Base::now_;
  using Base::result_;
  using Base::tasks_;

  // ---- kernel policy hooks ----------------------------------------------

  void Boot() {
    for (std::size_t i = 0; i < this->NumTasks(); ++i) {
      tasks_[i].sleep_handle = sleep_.push(0, i);
      tasks_[i].next_release = 0;
      this->Push(Ev{.t = 0, .kind = EvKind::kTimer, .task_idx = i});
    }
  }

  void Dispatch(const Ev& ev) {
    switch (ev.kind) {
      case EvKind::kTimer: OnTimer(ev.task_idx); break;
      case EvKind::kOverheadEnd: OnOvhEnd(ev.core, ev.epoch); break;
      case EvKind::kSegmentEnd: OnSegEnd(ev.core, ev.epoch); break;
      case EvKind::kMigrationArrival: break;  // never emitted here
    }
  }

  Time WcetOf(std::size_t ti) const { return ts_[ti].wcet; }
  Time PeriodOf(std::size_t ti) const { return ts_[ti].period; }
  Time DeadlineOf(std::size_t ti) const { return ts_[ti].deadline; }
  rt::TaskId TaskIdOf(std::size_t ti) const { return ts_[ti].id; }

  void CollectQueueStats(SimResult& r) const {
    r.ready_ops += ready_.counters();
    r.sleep_ops += sleep_.counters();
  }

  // ---- helpers ----------------------------------------------------------

  std::uint64_t KeyOf(const GJob* j) const {
    if (gpolicy_ == GlobalPolicy::kGlobalRm) {
      return ts_[j->task_idx].priority;
    }
    return static_cast<std::uint64_t>(j->abs_deadline);
  }

  /// The global dispatch rule: fill idle cores with the best ready jobs,
  /// then preempt the worst-running core if the best ready job beats it.
  void Reschedule() {
    // Fill idle cores.
    for (std::uint32_t c = 0; c < kcfg_.num_cores && !ready_.empty(); ++c) {
      Core& core = CoreAt(c);
      if (core.state == CoreState::kIdle && core.pending_start == nullptr) {
        core.pending_start = ready_.pop_min().second;
        core.state = CoreState::kOvh;
        ++CoreStatsAt(c).context_switches;
        this->BurnOverhead(c, trace::OverheadKind::kSch,
                           kcfg_.overheads.sched_overhead(n_queue_, false));
        this->BurnOverhead(c, trace::OverheadKind::kCnt1,
                           kcfg_.overheads.ctxsw_in_overhead());
      }
    }
    if (ready_.empty()) return;
    // Preempt the worst occupied core while the best ready job beats it.
    while (!ready_.empty()) {
      int worst = -1;
      std::uint64_t worst_key = 0;
      for (std::uint32_t c = 0; c < kcfg_.num_cores; ++c) {
        const Core& core = CoreAt(c);
        const GJob* occupant = core.running != nullptr ? core.running
                                                       : core.pending_start;
        if (occupant == nullptr) continue;
        const std::uint64_t k = KeyOf(occupant);
        if (worst < 0 || k > worst_key) {
          worst = static_cast<int>(c);
          worst_key = k;
        }
      }
      if (worst < 0) return;  // nothing occupied (cannot happen here)
      if (ready_.min_key() >= worst_key) return;  // no preemption
      PreemptCore(static_cast<std::uint32_t>(worst));
    }
  }

  void PreemptCore(std::uint32_t c) {
    Core& core = CoreAt(c);
    GJob* victim = core.running != nullptr ? core.running
                                           : core.pending_start;
    if (core.state == CoreState::kExec) this->SuspendRunning(c);
    core.running = nullptr;
    core.pending_start = nullptr;
    victim->resume_pending = true;
    this->Trace(trace::EventKind::kPreempt, c, victim);
    ++tasks_[victim->task_idx].stats.preemptions;
    ++result_.total_preemptions;
    ready_.push(KeyOf(victim), victim);

    core.pending_start = ready_.pop_min().second;
    core.state = CoreState::kOvh;
    ++CoreStatsAt(c).context_switches;
    this->BurnOverhead(c, trace::OverheadKind::kSch,
                       kcfg_.overheads.sched_overhead(n_queue_, true));
    this->BurnOverhead(c, trace::OverheadKind::kCnt1,
                       kcfg_.overheads.ctxsw_in_overhead());
  }

  // ---- event handlers ----------------------------------------------------

  void OnTimer(std::size_t ti) {
    GTaskRt<SleepQ>& tr = tasks_[ti];
    if (tr.active) {
      // Previous job still running: shed this release (overrun), retry
      // next period. The task is not asleep, so there is no sleep-queue
      // entry to remove.
      ++tr.stats.shed;
      tr.next_release += this->SampleInterArrival(ti);
      this->Push(Ev{.t = tr.next_release, .kind = EvKind::kTimer,
                    .task_idx = ti});
      return;
    }
    // The timer handler pops the task from the shared sleep queue (the
    // cost is part of release_overhead below, exactly as in the
    // partitioned engine).
    assert(tr.sleep_handle != nullptr);
    sleep_.erase(tr.sleep_handle);
    tr.sleep_handle = nullptr;

    // Release interrupt runs on a fixed per-task core (which also hosts
    // the task's recycled job slot).
    const auto irq_core =
        static_cast<std::uint32_t>(ts_[ti].id % kcfg_.num_cores);
    GJob* j = this->NewJob(ti, irq_core);
    tr.next_release = now_ + this->SampleInterArrival(ti);
    this->Push(Ev{.t = tr.next_release, .kind = EvKind::kTimer,
                  .task_idx = ti});

    this->Trace(trace::EventKind::kRelease, irq_core, j);
    ready_.push(KeyOf(j), j);
    if (CoreAt(irq_core).state == CoreState::kExec) {
      this->SuspendRunning(irq_core);
      CoreAt(irq_core).pending_start = CoreAt(irq_core).running;
      CoreAt(irq_core).running = nullptr;
    }
    this->BurnOverhead(irq_core, trace::OverheadKind::kRls,
                       kcfg_.overheads.release_overhead(n_queue_), j);
    Reschedule();
  }

  void OnOvhEnd(std::uint32_t c, std::uint64_t epoch) {
    Core& core = CoreAt(c);
    if (epoch != core.epoch || core.state != CoreState::kOvh) return;
    if (core.pending_start != nullptr) {
      core.running = core.pending_start;
      core.pending_start = nullptr;
      StartSegment(c);
      return;
    }
    core.state = CoreState::kIdle;
    this->Trace(trace::EventKind::kIdle, c, nullptr);
    Reschedule();
  }

  void StartSegment(std::uint32_t c) {
    Core& core = CoreAt(c);
    GJob* j = core.running;
    if (j->resume_pending) {
      const bool migrated = j->last_core >= 0 &&
                            j->last_core != static_cast<int>(c);
      const Time cpmd = kcfg_.overheads.cpmd(migrated);
      if (migrated) {
        ++tasks_[j->task_idx].stats.migrations;
        ++result_.total_migrations;
        this->Trace(trace::EventKind::kMigrateIn, c, j);
      }
      if (cpmd > 0) {
        j->exec_remaining += cpmd;
        CoreStatsAt(c).cpmd_charged += cpmd;
        this->Trace(trace::EventKind::kOverheadBegin, c, j,
                    trace::OverheadKind::kCache, cpmd);
      }
      j->resume_pending = false;
    }
    j->last_core = static_cast<int>(c);
    core.state = CoreState::kExec;
    core.seg_start = now_;
    ++core.epoch;
    this->Push(Ev{.t = now_ + j->exec_remaining,
                  .kind = EvKind::kSegmentEnd, .core = c,
                  .epoch = core.epoch});
    this->Trace(trace::EventKind::kStart, c, j);
  }

  void OnSegEnd(std::uint32_t c, std::uint64_t epoch) {
    Core& core = CoreAt(c);
    if (epoch != core.epoch || core.state != CoreState::kExec) return;
    GJob* j = core.running;
    this->BookProgress(c, j);
    assert(j->exec_remaining <= 0);

    GTaskRt<SleepQ>& tr = tasks_[j->task_idx];
    this->RecordCompletion(c, j);
    tr.active = false;
    // Wait out the already-armed next release in the shared sleep queue.
    tr.sleep_handle = sleep_.push(tr.next_release, j->task_idx);

    core.running = nullptr;
    core.state = CoreState::kOvh;
    this->BurnOverhead(c, trace::OverheadKind::kCnt2,
                       kcfg_.overheads.finish_overhead_normal(n_queue_), j);
    Reschedule();
  }

  const rt::TaskSet& ts_;
  GlobalPolicy gpolicy_;
  ReadyQ ready_;
  SleepQ sleep_;
  std::size_t n_queue_ = 1;
};

}  // namespace

SimResult SimulateGlobal(const rt::TaskSet& ts, const GlobalSimConfig& cfg,
                         trace::Recorder* recorder) {
  using containers::QueueBackend;
  // As in the partitioned Simulate: the recorder is the legacy way to
  // ask for a trace; the sink instantiation splits null/recording.
  GlobalSimConfig ecfg = cfg;
  if (recorder != nullptr && recorder->enabled()) ecfg.record_trace = true;
  const bool recording = ecfg.record_trace || ecfg.record_metrics;

  auto run = [&]<typename ReadyQ, typename SleepQ,
                 typename EventQ>() -> SimResult {
    if (recording) {
      GlobalEngine<ReadyQ, SleepQ, EventQ, obs::RecordSink> engine(ts, ecfg);
      return engine.Run();
    }
    GlobalEngine<ReadyQ, SleepQ, EventQ, obs::NullSink> engine(ts, ecfg);
    return engine.Run();
  };

  SimResult r = [&]() -> SimResult {
    if (ecfg.ready_backend == QueueBackend::kBinomialHeap &&
        ecfg.sleep_backend == QueueBackend::kRbTree &&
        ecfg.event_backend == QueueBackend::kBinomialHeap) {
      // Default combination: devirtualized event queue (DESIGN.md §9).
      using ReadyQ = containers::BinomialHeapQueue<std::uint64_t, GJob*>;
      using SleepQ = containers::RbTreeQueue<Time, std::size_t>;
      using EventQ =
          kernel::StaticEventQueue<GJob, QueueBackend::kBinomialHeap>;
      return run.template operator()<ReadyQ, SleepQ, EventQ>();
    }
    return containers::WithQueueBackend(ecfg.ready_backend, [&](auto rb) {
      return containers::WithQueueBackend(ecfg.sleep_backend, [&](auto sb) {
        using ReadyQ =
            containers::QueueOf<decltype(rb)::value, std::uint64_t, GJob*>;
        using SleepQ = containers::QueueOf<decltype(sb)::value, Time,
                                           std::size_t>;
        return run.template
            operator()<ReadyQ, SleepQ, kernel::DynamicEventQueue<GJob>>();
      });
    });
  }();
  if (recorder != nullptr && recorder->enabled()) {
    for (const trace::Event& e : r.trace_events) recorder->record(e);
  }
  return r;
}

}  // namespace sps::sim
