#pragma once
// Shared discrete-event scheduler kernel — the single implementation of
// everything the partitioned engine (sim/engine.cpp) and the global
// engine (sim/global_engine.cpp) used to duplicate: the event queue and
// its same-instant ordering, per-core run state, overhead charging and
// accounting, execution-time / inter-arrival sampling, job lifecycle
// bookkeeping, completion statistics, and end-of-run finalization.
//
// The kernel is policy-based (CRTP): an engine derives from
// KernelBase<Engine, Job, TaskRt, PerCore> and supplies
//
//   Boot()                    initial releases / timers
//   Dispatch(event)           event handlers (the scheduling POLICY:
//                             where jobs queue, who preempts whom, how
//                             split budgets migrate)
//   WcetOf / PeriodOf / DeadlineOf / TaskIdOf(task_idx)
//   CollectQueueStats(result) fold per-queue op counters into the result
//
// and a Job type derived from JobBase with a charge(progress) method
// (how execution progress is booked — the partitioned engine also burns
// the split-subtask budget, the global engine only the remaining WCET).
//
// Ready/sleep queue backends are template parameters OF THE ENGINES,
// not of the kernel: the kernel never touches a ready/sleep queue
// directly — it only prices their operations through the OverheadModel.
// Engines instantiate their queues from containers/queue_traits.hpp and
// select the backend at runtime (SimConfig::ready_backend /
// sleep_backend). The EVENT queue is the kernel's own and is a third
// runtime-selectable slot (KernelConfig::event_backend): any
// KeyedMinQueue backend keyed by the packed (t, kind-rank) event key,
// type-erased behind EventQueueBase so the engines' instantiation count
// stays ready x sleep.
//
// This header also hosts the public simulation types shared by both
// engines (ExecModel, ArrivalModel, TaskStats, CoreStats, SimResult);
// sim/engine.hpp re-exports them, so existing includes keep working.

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "containers/queue_traits.hpp"
#include "overhead/model.hpp"
#include "rt/task.hpp"
#include "rt/time.hpp"
#include "trace/trace.hpp"

namespace sps::sim {

/// How much of its WCET a job actually executes.
struct ExecModel {
  enum class Kind {
    kAlwaysWcet,  ///< every job runs exactly C (worst case; default)
    kFraction,    ///< every job runs fraction * C
    kUniform,     ///< uniform in [lo_fraction, hi_fraction] * C, seeded
  };
  Kind kind = Kind::kAlwaysWcet;
  double fraction = 1.0;
  double lo_fraction = 0.5;
  double hi_fraction = 1.0;
  std::uint64_t seed = 1;
};

/// Inter-arrival behaviour. The task model is sporadic: the period is
/// only a MINIMUM separation. kPeriodic releases exactly every T (the
/// analysis' worst case); kSporadicUniformDelay adds a uniform random
/// slack of up to `max_delay_fraction * T` to each inter-arrival, the
/// usual way to exercise non-critical-instant behaviour.
///
/// Scenario-diversity kinds (ROADMAP):
///   kJittered — releases stay on the nominal k*T grid but each is
///   displaced by an independent uniform jitter in [0, jitter_fraction*T]
///   (release_k = k*T + j_k). No long-term drift; consecutive releases
///   may be closer than T (interrupt-latency-style jitter), which the
///   engines absorb through their overrun/shed paths.
///   kBursty — runs of releases at the MINIMUM inter-arrival T (a burst)
///   separated by idle gaps: each inter-arrival is T with probability
///   burst_prob, else T * (1 + uniform(0, burst_gap_fraction)).
struct ArrivalModel {
  enum class Kind {
    kPeriodic,
    kSporadicUniformDelay,
    kJittered,
    kBursty,
  };
  Kind kind = Kind::kPeriodic;
  double max_delay_fraction = 0.2;
  /// kJittered: jitter bound as a fraction of the period.
  double jitter_fraction = 0.1;
  /// kBursty: probability the next inter-arrival continues a burst.
  double burst_prob = 0.5;
  /// kBursty: max idle gap between bursts, as a fraction of the period.
  double burst_gap_fraction = 1.0;
  std::uint64_t seed = 2;
};

struct TaskStats {
  rt::TaskId id = 0;
  std::uint64_t released = 0;
  std::uint64_t completed = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t shed = 0;  ///< releases skipped because the job overran
  std::uint64_t preemptions = 0;
  std::uint64_t migrations = 0;
  Time max_response = 0;
  double avg_response = 0.0;  ///< over completed jobs
};

struct CoreStats {
  Time busy_exec = 0;      ///< time spent running task code (incl. CPMD)
  Time overhead_rls = 0;
  Time overhead_sch = 0;
  Time overhead_cnt1 = 0;
  Time overhead_cnt2 = 0;
  Time cpmd_charged = 0;   ///< CPMD portion inside busy_exec
  std::uint64_t context_switches = 0;
};

struct SimResult {
  std::vector<TaskStats> tasks;
  std::vector<CoreStats> cores;
  std::uint64_t total_misses = 0;
  std::uint64_t total_migrations = 0;
  std::uint64_t total_preemptions = 0;
  Time simulated = 0;
  /// Aggregated queue-operation counts over every ready / sleep queue
  /// instance the run touched (all cores). Backend-independent: the op
  /// SEQUENCE is fixed by the scheduling policy, only per-op cost varies.
  containers::QueueOpCounters ready_ops;
  containers::QueueOpCounters sleep_ops;
  /// Operation counts of the kernel's own event queue (same invariance:
  /// the event sequence is fixed by the policy, not the backend).
  containers::QueueOpCounters event_ops;

  [[nodiscard]] Time total_overhead() const;
  [[nodiscard]] std::string summary() const;
};

namespace kernel {

enum class CoreState : std::uint8_t { kIdle, kExec, kOvh };

/// Same-instant ordering matters twice over: a segment that completes
/// exactly when a timer fires must finish BEFORE the release is handled
/// (otherwise the done job is "preempted" with zero work left and its
/// completion slips past the boundary), and all releases/arrivals must
/// land in the ready queues BEFORE any dispatch (overhead end) at the
/// same instant, or the scheduler briefly starts a job it immediately
/// preempts. The enum value IS the same-instant rank; ties break by
/// insertion order.
enum class EvKind : std::uint8_t {
  kSegmentEnd = 0,        // running segment ended (core, epoch)
  kTimer = 1,             // task release (task_idx)
  kMigrationArrival = 2,  // job lands on destination core (core, job)
  kOverheadEnd = 3,       // core finished its overhead window (core, epoch)
};

/// Number of EvKind values. EventKey packs the kind into 2 bits and
/// static_asserts against this count — when adding an event kind, bump
/// it here and widen the EventKey shift.
inline constexpr unsigned kNumEvKinds = 4;

template <typename JobT>
struct Event {
  Time t = 0;
  std::uint64_t seq = 0;
  EvKind kind = EvKind::kTimer;
  std::uint32_t core = 0;
  std::size_t task_idx = 0;
  std::uint64_t epoch = 0;
  JobT* job = nullptr;
};

/// The event queue's ordering is (t, kind-rank, insertion order). Every
/// KeyedMinQueue backend is FIFO among equal keys and the kernel pushes
/// events in seq order, so packing (t, kind) into one integer key gives
/// exactly that total order on every backend — which makes the EVENT
/// queue a policy slot selectable at runtime like the ready/sleep queues
/// (KernelConfig::event_backend), with bit-identical results across all
/// of them. Packing needs t < 2^61 (an ~73-year horizon in ns).
template <typename JobT>
[[nodiscard]] inline std::uint64_t EventKey(const Event<JobT>& e) {
  static_assert(kNumEvKinds <= 4,
                "EventKey packs EvKind into 2 bits; widen the shift when "
                "adding event kinds");
  assert(e.t >= 0 && static_cast<std::uint64_t>(e.t) < (1ull << 61));
  return (static_cast<std::uint64_t>(e.t) << 2) |
         static_cast<std::uint64_t>(e.kind);
}

/// Type-erased event queue: one virtual hop per operation buys runtime
/// backend selection WITHOUT multiplying the engines' template
/// instantiations by another backend axis (ready x sleep x event would
/// be 125 engine instantiations each; this keeps it at ready x sleep).
template <typename JobT>
class EventQueueBase {
 public:
  virtual ~EventQueueBase() = default;
  virtual void push(std::uint64_t key, const Event<JobT>& e) = 0;
  virtual Event<JobT> pop_min() = 0;
  [[nodiscard]] virtual bool empty() const = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual const containers::QueueOpCounters& counters()
      const = 0;
};

template <typename JobT, typename Q>
class EventQueueImpl final : public EventQueueBase<JobT> {
  static_assert(
      containers::ReadyQueueFor<Q, std::uint64_t, Event<JobT>>);

 public:
  void push(std::uint64_t key, const Event<JobT>& e) override {
    q_.push(key, e);
  }
  Event<JobT> pop_min() override { return q_.pop_min().second; }
  [[nodiscard]] bool empty() const override { return q_.empty(); }
  [[nodiscard]] std::size_t size() const override { return q_.size(); }
  [[nodiscard]] const containers::QueueOpCounters& counters()
      const override {
    return q_.counters();
  }

 private:
  Q q_;
};

template <typename JobT>
std::unique_ptr<EventQueueBase<JobT>> MakeEventQueue(
    containers::QueueBackend b) {
  return containers::WithQueueBackend(
      b, [](auto tag) -> std::unique_ptr<EventQueueBase<JobT>> {
        using Q = containers::QueueOf<decltype(tag)::value, std::uint64_t,
                                      Event<JobT>>;
        return std::make_unique<EventQueueImpl<JobT, Q>>();
      });
}

/// Common per-job state. Engines derive and add policy state (split
/// budgets, last-run core, ...) plus a charge(progress) method booking
/// executed time against the job's counters.
struct JobBase {
  std::size_t task_idx = 0;
  std::uint64_t seq = 0;   ///< job number within its task
  Time release_time = 0;
  Time abs_deadline = 0;
  Time exec_remaining = 0;  ///< actual execution left (CPMD included)
};

/// Common per-task runtime state. Engines derive and add policy state
/// (placement pointer, sleep-queue handle, ...).
struct TaskRunBase {
  bool active = false;
  Time next_release = 0;  ///< nominal release of the NEXT job
  Time last_release = 0;  ///< actual release of the in-flight job
  Time last_jitter = 0;   ///< displacement of the previous release (kJittered)
  TaskStats stats;
  double response_sum = 0.0;
};

/// The engine-independent slice of a simulation config.
struct KernelConfig {
  unsigned num_cores = 1;
  Time horizon = 0;
  overhead::OverheadModel overheads;
  ExecModel exec;
  ArrivalModel arrivals;
  bool stop_on_first_miss = false;
  /// Backend of the kernel's event queue (runtime-selectable policy
  /// slot, like the engines' ready/sleep backends).
  containers::QueueBackend event_backend =
      containers::QueueBackend::kBinomialHeap;
};

template <typename Policy, typename JobT, typename TaskRtT, typename PerCoreT>
class KernelBase {
 public:
  /// Boot the policy, drain the event queue up to the horizon, finalize.
  SimResult Run() {
    policy().Boot();
    while (!events_->empty() && !halted_) {
      const Event<JobT> ev = events_->pop_min();
      if (ev.t > kcfg_.horizon) break;
      now_ = ev.t;
      policy().Dispatch(ev);
    }
    return Finalize();
  }

 protected:
  /// Per-core run state; PerCoreT adds the policy's per-core queues
  /// (partitioned: ready + sleep; global: none — queues are shared).
  struct Core : PerCoreT {
    CoreState state = CoreState::kIdle;
    JobT* running = nullptr;        ///< executing, or suspended mid-overhead
    JobT* pending_start = nullptr;  ///< picked by sch(), awaiting overhead
    bool need_sched = false;
    Time busy_until = 0;
    Time seg_start = 0;
    std::uint64_t epoch = 0;  ///< invalidates stale core events
  };

  KernelBase(const KernelConfig& kcfg, std::size_t num_tasks,
             trace::Recorder* rec)
      : kcfg_(kcfg), rec_(rec), cores_(kcfg.num_cores), tasks_(num_tasks),
        events_(MakeEventQueue<JobT>(kcfg.event_backend)),
        rng_(kcfg.exec.seed), arrival_rng_(kcfg.arrivals.seed) {
    result_.cores.resize(kcfg.num_cores);
  }

  Policy& policy() { return static_cast<Policy&>(*this); }
  const Policy& policy() const { return static_cast<const Policy&>(*this); }

  void Push(Event<JobT> e) {
    e.seq = ++ev_seq_;
    events_->push(EventKey(e), e);
  }

  /// Create the job object for task ti's release at now_ and mark the
  /// task active. Policy fills its own fields (budgets etc.) afterwards.
  JobT* NewJob(std::size_t ti) {
    TaskRtT& tr = tasks_[ti];
    auto owned = std::make_unique<JobT>();
    JobT* j = owned.get();
    jobs_.push_back(std::move(owned));
    j->task_idx = ti;
    j->seq = ++tr.stats.released;
    j->release_time = now_;
    j->abs_deadline = now_ + policy().DeadlineOf(ti);
    j->exec_remaining = SampleExec(ti);
    tr.active = true;
    tr.last_release = now_;
    return j;
  }

  Time SampleExec(std::size_t ti) {
    const Time c = policy().WcetOf(ti);
    switch (kcfg_.exec.kind) {
      case ExecModel::Kind::kAlwaysWcet:
        return c;
      case ExecModel::Kind::kFraction:
        return std::max<Time>(
            1, static_cast<Time>(kcfg_.exec.fraction *
                                 static_cast<double>(c)));
      case ExecModel::Kind::kUniform: {
        std::uniform_real_distribution<double> d(kcfg_.exec.lo_fraction,
                                                 kcfg_.exec.hi_fraction);
        return std::max<Time>(
            1, static_cast<Time>(d(rng_) * static_cast<double>(c)));
      }
    }
    return c;
  }

  /// Next inter-arrival distance per the arrival model (see ArrivalModel
  /// for the semantics of each kind).
  Time SampleInterArrival(std::size_t ti) {
    const Time t = policy().PeriodOf(ti);
    switch (kcfg_.arrivals.kind) {
      case ArrivalModel::Kind::kPeriodic:
        return t;
      case ArrivalModel::Kind::kSporadicUniformDelay: {
        std::uniform_real_distribution<double> d(
            0.0, kcfg_.arrivals.max_delay_fraction);
        return t +
               static_cast<Time>(d(arrival_rng_) * static_cast<double>(t));
      }
      case ArrivalModel::Kind::kJittered: {
        // release_k = k*T + j_k: the gap is T + j_k - j_{k-1}, so jitter
        // is bounded around the nominal grid and never accumulates.
        std::uniform_real_distribution<double> d(
            0.0, kcfg_.arrivals.jitter_fraction);
        const Time j =
            static_cast<Time>(d(arrival_rng_) * static_cast<double>(t));
        TaskRtT& tr = tasks_[ti];
        const Time gap = t + j - tr.last_jitter;
        tr.last_jitter = j;
        return std::max<Time>(1, gap);
      }
      case ArrivalModel::Kind::kBursty: {
        std::uniform_real_distribution<double> d(0.0, 1.0);
        if (d(arrival_rng_) < kcfg_.arrivals.burst_prob) return t;
        std::uniform_real_distribution<double> g(
            0.0, kcfg_.arrivals.burst_gap_fraction);
        return t +
               static_cast<Time>(g(arrival_rng_) * static_cast<double>(t));
      }
    }
    return t;
  }

  void Trace(trace::EventKind k, std::uint32_t core, const JobT* j,
             trace::OverheadKind ovh = trace::OverheadKind::kNone,
             Time dur = 0, Time at = -1) {
    if (rec_ == nullptr || !rec_->enabled()) return;
    trace::Event e;
    e.time = at < 0 ? now_ : at;
    e.core = core;
    e.kind = k;
    e.overhead = ovh;
    if (j != nullptr) {
      e.task = policy().TaskIdOf(j->task_idx);
      e.job = j->seq;
    }
    e.duration = dur;
    rec_->record(e);
  }

  void AccountOverhead(std::uint32_t c, trace::OverheadKind kind, Time dur) {
    CoreStats& s = result_.cores[c];
    switch (kind) {
      case trace::OverheadKind::kRls: s.overhead_rls += dur; break;
      case trace::OverheadKind::kSch: s.overhead_sch += dur; break;
      case trace::OverheadKind::kCnt1: s.overhead_cnt1 += dur; break;
      case trace::OverheadKind::kCnt2: s.overhead_cnt2 += dur; break;
      default: break;
    }
  }

  /// Burn `cost` of core time starting no earlier than now_, tagged for
  /// the stats/trace, and (re)arm the overhead-end event. `who` labels the
  /// trace event (defaults to whichever job the core is holding).
  void BurnOverhead(std::uint32_t c, trace::OverheadKind kind, Time cost,
                    const JobT* who = nullptr) {
    Core& core = cores_[c];
    const Time base = std::max(now_, core.busy_until);
    if (cost > 0) {
      if (who == nullptr) {
        who = core.running != nullptr ? core.running : core.pending_start;
      }
      Trace(trace::EventKind::kOverheadBegin, c, who, kind, cost, base);
      AccountOverhead(c, kind, cost);
    }
    core.busy_until = base + cost;
    ++core.epoch;
    Push(Event<JobT>{.t = core.busy_until, .kind = EvKind::kOverheadEnd,
                     .core = c, .epoch = core.epoch});
  }

  /// Suspend the running job mid-segment: book its progress, invalidate
  /// the armed segment end, leave the core in the overhead state.
  void SuspendRunning(std::uint32_t c) {
    Core& core = cores_[c];
    JobT* j = core.running;
    assert(core.state == CoreState::kExec && j != nullptr);
    const Time progress = now_ - core.seg_start;
    j->charge(progress);
    result_.cores[c].busy_exec += progress;
    ++core.epoch;  // invalidate the armed segment-end
    core.state = CoreState::kOvh;
  }

  /// Completion bookkeeping shared by both engines: response-time stats,
  /// deadline check, optional halt-on-first-miss.
  void RecordCompletion(std::uint32_t c, JobT* j) {
    TaskRtT& tr = tasks_[j->task_idx];
    Trace(trace::EventKind::kFinish, c, j);
    ++tr.stats.completed;
    const Time response = now_ - j->release_time;
    tr.stats.max_response = std::max(tr.stats.max_response, response);
    tr.response_sum += static_cast<double>(response);
    if (now_ > j->abs_deadline) {
      ++tr.stats.deadline_misses;
      ++result_.total_misses;
      Trace(trace::EventKind::kDeadlineMiss, c, j);
      if (kcfg_.stop_on_first_miss) halted_ = true;
    }
  }

  SimResult Finalize() {
    result_.simulated = std::min(now_, kcfg_.horizon);
    // Unfinished jobs whose deadline already passed are misses too. The
    // in-flight job's ACTUAL release is tracked (not reconstructed from
    // next_release, which would be off by the slack under sporadic
    // arrivals and undercount end-of-horizon misses).
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      TaskRtT& tr = tasks_[i];
      if (tr.active) {
        if (tr.last_release + policy().DeadlineOf(i) <= kcfg_.horizon) {
          ++tr.stats.deadline_misses;
          ++result_.total_misses;
        }
      }
      if (tr.stats.completed > 0) {
        tr.stats.avg_response =
            tr.response_sum / static_cast<double>(tr.stats.completed);
      }
      result_.tasks.push_back(tr.stats);
    }
    result_.event_ops = events_->counters();
    policy().CollectQueueStats(result_);
    return std::move(result_);
  }

  KernelConfig kcfg_;
  trace::Recorder* rec_;
  std::vector<Core> cores_;
  std::vector<TaskRtT> tasks_;
  std::vector<std::unique_ptr<JobT>> jobs_;
  std::unique_ptr<EventQueueBase<JobT>> events_;
  std::mt19937_64 rng_;
  std::mt19937_64 arrival_rng_;
  Time now_ = 0;
  std::uint64_t ev_seq_ = 0;
  bool halted_ = false;
  SimResult result_;
};

}  // namespace kernel
}  // namespace sps::sim
