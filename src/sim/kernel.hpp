#pragma once
// Shared discrete-event scheduler kernel — the single implementation of
// everything the partitioned engine (sim/engine.cpp) and the global
// engine (sim/global_engine.cpp) used to duplicate: the event queue and
// its same-instant ordering, per-core run state, overhead charging and
// accounting, execution-time / inter-arrival sampling, job lifecycle
// bookkeeping, completion statistics, and end-of-run finalization.
//
// The kernel is policy-based (CRTP): an engine derives from
// KernelBase<Engine, Job, TaskRt, PerCore, EventQueueT> and supplies
//
//   Boot()                    initial releases / timers
//   Dispatch(event)           event handlers (the scheduling POLICY:
//                             where jobs queue, who preempts whom, how
//                             split budgets migrate)
//   OnDeliver(event)          cross-shard delivery hook (sharded runs;
//                             default no-op)
//   WcetOf / PeriodOf / DeadlineOf / TaskIdOf(task_idx)
//   CollectQueueStats(result) fold per-queue op counters into the result
//
// and a Job type derived from JobBase with a charge(progress) method
// (how execution progress is booked — the partitioned engine also burns
// the split-subtask budget, the global engine only the remaining WCET).
//
// Ready/sleep queue backends are template parameters OF THE ENGINES,
// not of the kernel: the kernel never touches a ready/sleep queue
// directly — it only prices their operations through the OverheadModel.
// The kernel's own EVENT queue is the EventQueueT template parameter,
// with two implementations (DESIGN.md §9):
//
//   * StaticEventQueue<JobT, B> — the concrete backend inlined into the
//     kernel, zero virtual dispatch on the per-event hot path. The
//     engines instantiate it for the DEFAULT backend combination, which
//     is what every simulation that does not override --event-queue
//     runs on.
//   * DynamicEventQueue<JobT> — the PR-2 type-erased slot (one virtual
//     hop per op) kept for runtime `--event-queue` overrides, so the
//     engines' instantiation count stays ready x sleep instead of
//     gaining a full third axis.
//
// Hot-path memory (DESIGN.md §9): job objects live in per-core
// SlabArenas and are RECYCLED — a task's dead job is destroyed and its
// slot reused when the next release of that task is created, on the
// same core — so a run of millions of events performs O(1) steady-state
// allocations (KernelConfig::job_arena=false keeps the PR-2
// unique_ptr-per-release pattern for the bench_single_run A/B).
//
// Determinism & sharding: all random sampling draws from PER-TASK
// SplitMix64 streams seeded by (config seed, task index) — never from a
// shared generator whose draw order would depend on the global event
// interleaving. That makes the event-processing order across DIFFERENT
// cores immaterial, which is what lets the sharded runner
// (sim/engine.cpp, SimConfig::shards) execute each core's event loop
// concurrently and still produce bit-identical SimResults: a shard only
// processes an event once every potential sender shard can no longer
// emit anything that would order before it (conservative sender-clock
// windows, DESIGN.md §9).
//
// Observability (DESIGN.md §10): the kernel's third policy slot is the
// SINK (obs/sink.hpp) — obs::NullSink compiles every trace/metrics hook
// away (the default, perf-guarded path), obs::RecordSink appends stamped
// trace events to a lane-local arena buffer and accumulates streaming
// metrics, which is what lets SHARDED runs record traces and metrics
// (merged deterministically afterwards) instead of falling back to the
// serial loop.
//
// This header also hosts the public simulation types shared by both
// engines (ExecModel, ArrivalModel, TaskStats, CoreStats, SimResult);
// sim/engine.hpp re-exports them, so existing includes keep working.

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "containers/queue_traits.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/trace_buffer.hpp"
#include "overhead/model.hpp"
#include "rt/task.hpp"
#include "rt/time.hpp"
#include "trace/trace.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"

namespace sps::sim {

/// How much of its WCET a job actually executes.
///
/// kSpiky is the overload-injection model (DESIGN.md §13): each job runs
/// exactly C, except that with probability spike_prob it OVERRUNS to
/// spike_magnitude * C — i.e. the declared WCET was wrong for that job.
/// The engines absorb overruns through their shed path (releases that
/// pass while a job still runs are skipped and counted in
/// TaskStats::shed; split tails execute past their nominal budget), so a
/// spiky run never UBs — it just misses deadlines, which is the point.
/// Draws come from the same per-task DeriveSeed streams as kUniform, so
/// spiky runs stay bit-identical across backends and shard counts.
struct ExecModel {
  enum class Kind {
    kAlwaysWcet,  ///< every job runs exactly C (worst case; default)
    kFraction,    ///< every job runs fraction * C
    kUniform,     ///< uniform in [lo_fraction, hi_fraction] * C, seeded
    kSpiky,       ///< C, but spike_prob of the jobs run spike_magnitude*C
  };
  Kind kind = Kind::kAlwaysWcet;
  double fraction = 1.0;
  double lo_fraction = 0.5;
  double hi_fraction = 1.0;
  /// kSpiky: per-job overrun probability / execution-time multiplier.
  double spike_prob = 0.1;
  double spike_magnitude = 1.3;
  std::uint64_t seed = 1;
};

/// Inter-arrival behaviour. The task model is sporadic: the period is
/// only a MINIMUM separation. kPeriodic releases exactly every T (the
/// analysis' worst case); kSporadicUniformDelay adds a uniform random
/// slack of up to `max_delay_fraction * T` to each inter-arrival, the
/// usual way to exercise non-critical-instant behaviour.
///
/// Scenario-diversity kinds (ROADMAP):
///   kJittered — releases stay on the nominal k*T grid but each is
///   displaced by an independent uniform jitter in [0, jitter_fraction*T]
///   (release_k = k*T + j_k). No long-term drift; consecutive releases
///   may be closer than T (interrupt-latency-style jitter), which the
///   engines absorb through their overrun/shed paths.
///   kBursty — runs of releases at the MINIMUM inter-arrival T (a burst)
///   separated by idle gaps: each inter-arrival is T with probability
///   burst_prob, else T * (1 + uniform(0, burst_gap_fraction)).
struct ArrivalModel {
  enum class Kind {
    kPeriodic,
    kSporadicUniformDelay,
    kJittered,
    kBursty,
  };
  Kind kind = Kind::kPeriodic;
  double max_delay_fraction = 0.2;
  /// kJittered: jitter bound as a fraction of the period.
  double jitter_fraction = 0.1;
  /// kBursty: probability the next inter-arrival continues a burst.
  double burst_prob = 0.5;
  /// kBursty: max idle gap between bursts, as a fraction of the period.
  double burst_gap_fraction = 1.0;
  std::uint64_t seed = 2;
};

struct TaskStats {
  rt::TaskId id = 0;
  std::uint64_t released = 0;
  std::uint64_t completed = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t shed = 0;  ///< releases skipped because the job overran
  std::uint64_t preemptions = 0;
  std::uint64_t migrations = 0;
  Time max_response = 0;
  double avg_response = 0.0;  ///< over completed jobs
};

struct CoreStats {
  Time busy_exec = 0;      ///< time spent running task code (incl. CPMD)
  Time overhead_rls = 0;
  Time overhead_sch = 0;
  Time overhead_cnt1 = 0;
  Time overhead_cnt2 = 0;
  Time cpmd_charged = 0;   ///< CPMD portion inside busy_exec
  std::uint64_t context_switches = 0;
};

struct SimResult {
  std::vector<TaskStats> tasks;
  std::vector<CoreStats> cores;
  std::uint64_t total_misses = 0;
  std::uint64_t total_migrations = 0;
  std::uint64_t total_preemptions = 0;
  Time simulated = 0;
  /// Aggregated queue-operation counts over every ready / sleep queue
  /// instance the run touched (all cores). Backend-independent: the op
  /// SEQUENCE is fixed by the scheduling policy, only per-op cost varies.
  containers::QueueOpCounters ready_ops;
  containers::QueueOpCounters sleep_ops;
  /// Operation counts of the kernel's own event queue (same invariance:
  /// the event sequence is fixed by the policy, not the backend — and,
  /// since PR 3, not by the shard count either).
  containers::QueueOpCounters event_ops;
  /// Canonical trace of the run (SimConfig::record_trace): the stamped,
  /// deterministically merged event stream — byte-identical for every
  /// shard count and backend (DESIGN.md §10). Empty when not recording.
  std::vector<trace::Event> trace_events;
  /// Streaming metrics (SimConfig::record_metrics): per-task response /
  /// tardiness histograms and per-core busy/overhead/idle accounting.
  /// Empty (metrics.enabled() == false) when not recording.
  obs::RunMetrics metrics;

  [[nodiscard]] Time total_overhead() const;
  [[nodiscard]] std::string summary() const;
};

namespace kernel {

enum class CoreState : std::uint8_t { kIdle, kExec, kOvh };

/// Same-instant ordering matters twice over: a segment that completes
/// exactly when a timer fires must finish BEFORE the release is handled
/// (otherwise the done job is "preempted" with zero work left and its
/// completion slips past the boundary), and all releases/arrivals must
/// land in the ready queues BEFORE any dispatch (overhead end) at the
/// same instant, or the scheduler briefly starts a job it immediately
/// preempts. The enum value IS the same-instant rank; ties break by
/// insertion order.
///
/// The rank layout is also what gives the sharded runner its lookahead:
/// only kSegmentEnd (rank 0) dispatches ever emit CROSS-core events
/// (task finish -> wake timer on the first core; budget exhaustion ->
/// migration arrival on the next core), and those emissions carry ranks
/// >= 1 at the same instant or later — so a shard dispatching packed key
/// K can never emit below K+1 (DESIGN.md §9).
enum class EvKind : std::uint8_t {
  kSegmentEnd = 0,        // running segment ended (core, epoch)
  kTimer = 1,             // task release (task_idx)
  kMigrationArrival = 2,  // job lands on destination core (core, job)
  kOverheadEnd = 3,       // core finished its overhead window (core, epoch)
};

/// Number of EvKind values. EventKey packs the kind into kEvKindBits
/// bits and static_asserts against this count — when adding an event
/// kind, bump it here and widen the shift.
inline constexpr unsigned kNumEvKinds = 4;
inline constexpr unsigned kEvKindBits = 2;

template <typename JobT>
struct Event {
  Time t = 0;
  std::uint64_t seq = 0;
  EvKind kind = EvKind::kTimer;
  std::uint32_t core = 0;
  std::size_t task_idx = 0;
  std::uint64_t epoch = 0;
  JobT* job = nullptr;
};

/// The event queue's ordering is (t, kind-rank, insertion order). Every
/// KeyedMinQueue backend is FIFO among equal keys and the kernel pushes
/// events in seq order, so packing (t, kind) into one integer key gives
/// exactly that total order on every backend — which makes the EVENT
/// queue a policy slot selectable at runtime like the ready/sleep queues
/// (KernelConfig::event_backend), with bit-identical results across all
/// of them. Packing needs t < 2^61 (an ~73-year horizon in ns).
template <typename JobT>
[[nodiscard]] inline std::uint64_t EventKey(const Event<JobT>& e) {
  static_assert(kNumEvKinds <= (1u << kEvKindBits),
                "EventKey packs EvKind into kEvKindBits bits; widen the "
                "shift when adding event kinds");
  assert(e.t >= 0 &&
         static_cast<std::uint64_t>(e.t) < (1ull << (63 - kEvKindBits)));
  return (static_cast<std::uint64_t>(e.t) << kEvKindBits) |
         static_cast<std::uint64_t>(e.kind);
}

/// Time component of a packed event key.
[[nodiscard]] inline Time EventKeyTime(std::uint64_t key) {
  return static_cast<Time>(key >> kEvKindBits);
}

/// Type-erased event queue: one virtual hop per operation buys runtime
/// backend selection WITHOUT multiplying the engines' template
/// instantiations by another backend axis. Since PR 3 this is only the
/// OVERRIDE path (--event-queue); the default backend runs through
/// StaticEventQueue below with no virtual dispatch.
template <typename JobT>
class EventQueueBase {
 public:
  virtual ~EventQueueBase() = default;
  virtual void push(std::uint64_t key, const Event<JobT>& e) = 0;
  virtual Event<JobT> pop_min() = 0;
  [[nodiscard]] virtual std::uint64_t min_key() const = 0;
  [[nodiscard]] virtual bool empty() const = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual const containers::QueueOpCounters& counters()
      const = 0;
};

template <typename JobT, typename Q>
class EventQueueImpl final : public EventQueueBase<JobT> {
  static_assert(
      containers::ReadyQueueFor<Q, std::uint64_t, Event<JobT>>);

 public:
  void push(std::uint64_t key, const Event<JobT>& e) override {
    q_.push(key, e);
  }
  Event<JobT> pop_min() override { return q_.pop_min().second; }
  [[nodiscard]] std::uint64_t min_key() const override {
    return q_.min_key();
  }
  [[nodiscard]] bool empty() const override { return q_.empty(); }
  [[nodiscard]] std::size_t size() const override { return q_.size(); }
  [[nodiscard]] const containers::QueueOpCounters& counters()
      const override {
    return q_.counters();
  }

 private:
  Q q_;
};

template <typename JobT>
std::unique_ptr<EventQueueBase<JobT>> MakeEventQueue(
    containers::QueueBackend b) {
  return containers::WithQueueBackend(
      b, [](auto tag) -> std::unique_ptr<EventQueueBase<JobT>> {
        using Q = containers::QueueOf<decltype(tag)::value, std::uint64_t,
                                      Event<JobT>>;
        return std::make_unique<EventQueueImpl<JobT, Q>>();
      });
}

/// EventQueueT for runtime-selected backends: the PR-2 type-erased slot.
template <typename JobT>
class DynamicEventQueue {
 public:
  explicit DynamicEventQueue(containers::QueueBackend b)
      : q_(MakeEventQueue<JobT>(b)) {}
  void push(std::uint64_t key, const Event<JobT>& e) { q_->push(key, e); }
  Event<JobT> pop_min() { return q_->pop_min(); }
  [[nodiscard]] std::uint64_t min_key() const { return q_->min_key(); }
  [[nodiscard]] bool empty() const { return q_->empty(); }
  [[nodiscard]] const containers::QueueOpCounters& counters() const {
    return q_->counters();
  }

 private:
  std::unique_ptr<EventQueueBase<JobT>> q_;
};

/// EventQueueT for the default backend: the concrete container inlined
/// into the kernel — every per-event operation devirtualized.
template <typename JobT, containers::QueueBackend B>
class StaticEventQueue {
 public:
  explicit StaticEventQueue(containers::QueueBackend b) {
    assert(b == B);
    (void)b;
  }
  void push(std::uint64_t key, const Event<JobT>& e) { q_.push(key, e); }
  Event<JobT> pop_min() { return q_.pop_min().second; }
  [[nodiscard]] std::uint64_t min_key() const { return q_.min_key(); }
  [[nodiscard]] bool empty() const { return q_.empty(); }
  [[nodiscard]] const containers::QueueOpCounters& counters() const {
    return q_.counters();
  }

 private:
  containers::QueueOf<B, std::uint64_t, Event<JobT>> q_;
};

/// Per-lane mailboxes for cross-shard event delivery (DESIGN.md §9).
/// Senders append under the target's mutex during a processing window;
/// the owning shard drains at the next window boundary, SORTS the batch
/// into the deterministic (packed key, task index) order — arrival order
/// depends on thread timing, the sorted order does not — and only then
/// feeds its local event queue.
template <typename JobT>
class ShardRouter {
 public:
  explicit ShardRouter(std::size_t lanes) : boxes_(lanes) {}

  void Deliver(const Event<JobT>& e) {
    Box& b = boxes_[e.core];
    std::lock_guard<std::mutex> lock(b.mu);
    b.in.push_back(e);
  }

  [[nodiscard]] std::vector<Event<JobT>> Take(std::size_t lane) {
    Box& b = boxes_[lane];
    std::lock_guard<std::mutex> lock(b.mu);
    std::vector<Event<JobT>> out;
    out.swap(b.in);
    return out;
  }

 private:
  struct Box {
    std::mutex mu;
    std::vector<Event<JobT>> in;
  };
  std::vector<Box> boxes_;
};

/// Common per-job state. Engines derive and add policy state (split
/// budgets, last-run core, ...) plus a charge(progress) method booking
/// executed time against the job's counters.
struct JobBase {
  std::size_t task_idx = 0;
  std::uint64_t seq = 0;   ///< job number within its task
  Time release_time = 0;
  Time abs_deadline = 0;
  Time exec_remaining = 0;  ///< actual execution left (CPMD included)
};

/// Common per-task runtime state. Engines derive and add policy state
/// (placement pointer, sleep-queue handle, ...). Templated on the job
/// type since PR 3 so it can host the task's recycled job slot.
///
/// The RNG streams live HERE, not in the kernel: every draw a task ever
/// makes comes from its own two generators, so the draw sequence is a
/// pure function of (config seed, task index) — independent of how
/// events of DIFFERENT tasks interleave, which is both a stronger
/// determinism statement than PR 2's shared generators and the property
/// that makes the sharded runner exact (DESIGN.md §9).
template <typename JobT>
struct TaskRunBase {
  bool active = false;
  Time next_release = 0;  ///< nominal release of the NEXT job
  Time last_release = 0;  ///< actual release of the in-flight job
  Time last_jitter = 0;   ///< displacement of the previous release (kJittered)
  TaskStats stats;
  double response_sum = 0.0;
  util::SplitMix64 exec_rng;
  util::SplitMix64 arrival_rng;
  JobT* last_job = nullptr;  ///< dead job awaiting recycling (job_arena)
};

/// The engine-independent slice of a simulation config.
struct KernelConfig {
  unsigned num_cores = 1;
  Time horizon = 0;
  overhead::OverheadModel overheads;
  ExecModel exec;
  ArrivalModel arrivals;
  bool stop_on_first_miss = false;
  /// Backend of the kernel's event queue (runtime-selectable policy
  /// slot, like the engines' ready/sleep backends).
  containers::QueueBackend event_backend =
      containers::QueueBackend::kBinomialHeap;
  /// Recycle job objects through per-core slab arenas (the default).
  /// false restores PR 2's unique_ptr-per-release allocation pattern —
  /// kept ONLY as the bench_single_run A/B comparison point.
  bool job_arena = true;
  /// Observability switches (DESIGN.md §10). Only honored when the
  /// engine is instantiated with a recording sink; the NullSink
  /// instantiation ignores them by construction.
  bool record_trace = false;
  bool record_metrics = false;
  /// Per-task ADMISSION GENERATION (task index order; missing entries =
  /// 0). Generation g != 0 re-derives that task's exec/arrival RNG
  /// streams with an extra DeriveSeed step, so an online LEAVE +
  /// re-ADMIT of the same task id does not resume the departed
  /// incarnation's RNG position (DESIGN.md §13). Generation 0 is
  /// bit-identical to configs that never set this field.
  std::vector<std::uint32_t> exec_generations;
  /// Streaming trace window (DESIGN.md §15): when non-null (and
  /// record_trace is on), finalized stamped records are drained to this
  /// consumer mid-run — in canonical merge order, byte-identical to the
  /// post-run full-buffer merge — whenever the buffer holds at least
  /// trace_window records, and SimResult::trace_events stays empty. The
  /// serial loop drains below its event queue's minimum key after each
  /// dispatch; the sharded driver drains at its barrier watermark.
  obs::TraceDrain* trace_drain = nullptr;
  std::size_t trace_window = 1u << 16;
};

template <typename Policy, typename JobT, typename TaskRtT, typename PerCoreT,
          typename EventQueueT = DynamicEventQueue<JobT>,
          typename SinkT = obs::NullSink>
class KernelBase {
 public:
  /// Boot the policy, drain the event queue up to the horizon, finalize.
  /// (The serial path; sharded runs drive BootShard/RunWindow/Collect*
  /// from sim/engine.cpp instead.)
  SimResult Run() {
    policy().Boot();
    while (!events_.empty() && !halted_) {
      if (EventKeyTime(events_.min_key()) > kcfg_.horizon) break;
      const Event<JobT> ev = events_.pop_min();
      now_ = ev.t;
      BeginDispatch(ev);
      policy().Dispatch(ev);
      if constexpr (SinkT::kActive) {
        // Streaming window: records below the queue's minimum key are
        // final (future dispatches never carry a smaller key; a SAME-key
        // dispatch may still tie-break earlier, so the bound is strict).
        if (kcfg_.trace_drain != nullptr && sink_.tracing() &&
            sink_.buffer().size() >= kcfg_.trace_window) {
          StreamDrainBelow(events_.empty() ? kNoEventKey
                                           : events_.min_key());
        }
      }
    }
    return Finalize();
  }

  // ---- sharded-run driver interface (DESIGN.md §9) ----------------------
  // The driver owns one kernel (engine) instance per lane (= core), all
  // sharing the task-state array, and alternates two phases over a
  // worker pool: drain mailboxes + publish every lane's next-event key,
  // then process each lane's events up to its safe bound (the minimum
  // published key over its sender lanes). Causal safety: a lane
  // dispatching packed key K only ever emits keys >= K+1 cross-lane, so
  // events below the bound can no longer arrive.

  /// Sentinel published by a lane whose event queue is empty.
  static constexpr std::uint64_t kNoEventKey = ~0ull;

  /// Boot only this shard's lane-local releases.
  void BootShard() { policy().Boot(); }

  /// Move mailbox deliveries into the local event queue (deterministic
  /// order), running the policy's delivery hook for each.
  void DrainMailbox() {
    assert(router_ != nullptr);
    std::vector<Event<JobT>> in = router_->Take(lane_);
    if (in.empty()) return;
    std::sort(in.begin(), in.end(),
              [](const Event<JobT>& a, const Event<JobT>& b) {
                const std::uint64_t ka = EventKey(a);
                const std::uint64_t kb = EventKey(b);
                if (ka != kb) return ka < kb;
                return DeliveryRank(a) < DeliveryRank(b);
              });
    for (Event<JobT>& ev : in) {
      policy().OnDeliver(ev);
      PushLocal(ev);
    }
  }

  /// Key of the next local event (the lane's published clock bound).
  [[nodiscard]] std::uint64_t NextEventKey() const {
    return events_.empty() ? kNoEventKey : events_.min_key();
  }

  /// Dispatch local events while their key is within `safe_key` and
  /// their time within the horizon. A lane that records a miss under
  /// stop_on_first_miss stops dispatching; the driver observes the flag
  /// at the next barrier and abandons the sharded attempt (the exact
  /// halt point is a serial-order property — see RunSharded).
  ///
  /// Streaming backpressure (DESIGN.md §15): with a trace drain
  /// configured, a lane PAUSES once its buffer holds its share of the
  /// window and resumes next round — stopping a window early is always
  /// protocol-safe (the remaining events just dispatch in later
  /// windows; other lanes' safe bounds never assumed this lane's
  /// emissions arrive within the round). Without the pause, a
  /// sender-free lane would run its whole horizon in ONE window and no
  /// barrier could ever drain mid-run. At least one event dispatches
  /// per window, so the global-minimum lane still guarantees progress.
  void RunWindow(std::uint64_t safe_key) {
    std::size_t lane_cap = std::numeric_limits<std::size_t>::max();
    if constexpr (SinkT::kActive) {
      if (kcfg_.trace_drain != nullptr && sink_.tracing()) {
        lane_cap = std::max<std::size_t>(
            1, kcfg_.trace_window / std::max(1u, kcfg_.num_cores));
      }
    }
    while (!events_.empty() && !halted_) {
      const std::uint64_t k = events_.min_key();
      if (k > safe_key || EventKeyTime(k) > kcfg_.horizon) break;
      const Event<JobT> ev = events_.pop_min();
      now_ = ev.t;
      BeginDispatch(ev);
      policy().Dispatch(ev);
      if constexpr (SinkT::kActive) {
        if (sink_.buffer().size() >= lane_cap) break;
      }
    }
  }

  /// Whether this lane halted on a deadline miss (stop_on_first_miss).
  [[nodiscard]] bool halted() const { return halted_; }

  /// Close this lane's observability streams (exec tail at the horizon,
  /// trailing idle). Sharded driver only; the serial path does the same
  /// inside Finalize.
  void FinalizeShardObservability() { FinalizeObservability(); }

  /// The lane's sink, for the driver's post-run trace/metrics merge.
  [[nodiscard]] const SinkT& sink() const { return sink_; }
  /// Mutable sink access for the sharded driver's streaming-window
  /// drain (DESIGN.md §15).
  [[nodiscard]] SinkT& sink_mut() { return sink_; }

  /// Fold this shard's slice into a merged result: its own core row,
  /// its event/ready/sleep counters, and its clock.
  void CollectShardInto(SimResult& r) const {
    r.cores[lane_] = CoreStatsAt(lane_);
    r.total_misses += result_.total_misses;
    r.total_migrations += result_.total_migrations;
    r.total_preemptions += result_.total_preemptions;
    r.event_ops += events_.counters();
    policy().CollectQueueStats(r);  // untouched cores contribute zeros
    r.simulated = std::max(r.simulated, std::min(now_, kcfg_.horizon));
  }

  /// The per-task half of Finalize (end-of-horizon misses, response
  /// averages). Shared task state: call on exactly ONE shard, after all
  /// lanes finished.
  void FinalizeTasksInto(SimResult& r) {
    for (std::size_t i = 0; i < num_tasks_; ++i) {
      TaskRtT& tr = tasks_[i];
      if (tr.active) {
        if (tr.last_release + policy().DeadlineOf(i) <= kcfg_.horizon) {
          ++tr.stats.deadline_misses;
          ++r.total_misses;
        }
      }
      if (tr.stats.completed > 0) {
        tr.stats.avg_response =
            tr.response_sum / static_cast<double>(tr.stats.completed);
      }
      r.tasks.push_back(tr.stats);
    }
  }

  /// Sharded-run wiring: lane = the one core this kernel instance
  /// processes, router = the cross-lane mailboxes, tasks = the SHARED
  /// task-state array (causally partitioned: a task's state is only
  /// ever touched along its own release->run->migrate->finish event
  /// chain, whose cross-lane edges all pass through the router).
  struct ShardContext {
    std::uint32_t lane = 0;
    ShardRouter<JobT>* router = nullptr;
    TaskRtT* tasks = nullptr;
    std::size_t num_tasks = 0;
  };

 protected:
  /// Per-core run state; PerCoreT adds the policy's per-core queues
  /// (partitioned: ready + sleep; global: none — queues are shared).
  struct Core : PerCoreT {
    CoreState state = CoreState::kIdle;
    JobT* running = nullptr;        ///< executing, or suspended mid-overhead
    JobT* pending_start = nullptr;  ///< picked by sch(), awaiting overhead
    bool need_sched = false;
    Time busy_until = 0;
    Time seg_start = 0;
    std::uint64_t epoch = 0;  ///< invalidates stale core events
    /// Job storage of the tasks released on this core (recycled slots;
    /// see KernelConfig::job_arena). Strictly lane-local in sharded
    /// runs — arenas are never crossed.
    util::SlabArena<JobT> job_arena;
  };

  KernelBase(const KernelConfig& kcfg, std::size_t num_tasks,
             const ShardContext* shard = nullptr)
      : kcfg_(kcfg),
        // A sharded lane materializes run state for its OWN core only —
        // one Core (queues + arenas) and one CoreStats row instead of
        // all m of them, which is what keeps whole-system construction
        // at O(m) instead of the O(m^2) the ROADMAP flagged. The
        // core_slot_mask_ below folds every core index to slot 0 in
        // shard mode (lane-local accesses only — asserted) and is the
        // identity in serial mode, keeping the hot path branch-free.
        cores_(shard != nullptr ? 1 : kcfg.num_cores),
        events_(kcfg.event_backend),
        core_slot_mask_(shard != nullptr ? 0u : ~0u),
        sink_(obs::SinkConfig{kcfg.record_trace, kcfg.record_metrics,
                              num_tasks, kcfg.num_cores, shard != nullptr,
                              shard != nullptr ? shard->lane : 0,
                              kcfg.horizon}) {
    result_.cores.resize(shard != nullptr ? 1 : kcfg.num_cores);
    if (shard != nullptr) {
      assert(shard->num_tasks == num_tasks && shard->tasks != nullptr);
      lane_ = shard->lane;
      router_ = shard->router;
      tasks_ = shard->tasks;
    } else {
      tasks_own_.resize(num_tasks);
      tasks_ = tasks_own_.data();
    }
    num_tasks_ = num_tasks;
    // Per-task RNG streams (see TaskRunBase). Re-seeding shared storage
    // from every shard is idempotent: the seeds depend only on config
    // and task index, and all shards are constructed before any runs.
    // A non-zero admission generation re-derives both streams (the
    // LEAVE/re-ADMIT fix, KernelConfig::exec_generations); generation 0
    // keeps the historical seeds bit-for-bit.
    for (std::size_t i = 0; i < num_tasks; ++i) {
      std::uint64_t eseed = util::DeriveSeed(kcfg.exec.seed, i, 0);
      std::uint64_t aseed = util::DeriveSeed(kcfg.arrivals.seed, i, 1);
      const std::uint32_t gen = i < kcfg.exec_generations.size()
                                    ? kcfg.exec_generations[i]
                                    : 0;
      if (gen != 0) {
        eseed = util::DeriveSeed(eseed, gen, 2);
        aseed = util::DeriveSeed(aseed, gen, 3);
      }
      tasks_[i].exec_rng = util::SplitMix64(eseed);
      tasks_[i].arrival_rng = util::SplitMix64(aseed);
    }
  }

  Policy& policy() { return static_cast<Policy&>(*this); }
  const Policy& policy() const { return static_cast<const Policy&>(*this); }

  /// Per-core run state of core `c`. In sharded mode only the lane's own
  /// core exists (slot 0); the mask makes the common serial case a plain
  /// index with no branch.
  Core& CoreAt(std::uint32_t c) {
    assert(core_slot_mask_ == ~0u || c == lane_);
    return cores_[c & core_slot_mask_];
  }
  const Core& CoreAt(std::uint32_t c) const {
    assert(core_slot_mask_ == ~0u || c == lane_);
    return cores_[c & core_slot_mask_];
  }
  CoreStats& CoreStatsAt(std::uint32_t c) {
    assert(core_slot_mask_ == ~0u || c == lane_);
    return result_.cores[c & core_slot_mask_];
  }
  const CoreStats& CoreStatsAt(std::uint32_t c) const {
    assert(core_slot_mask_ == ~0u || c == lane_);
    return result_.cores[c & core_slot_mask_];
  }

  /// Stamp the upcoming dispatch for the recording sink (trace merge
  /// determinism, obs/trace_buffer.hpp). Compiled away under NullSink.
  void BeginDispatch(const Event<JobT>& e) {
    if constexpr (SinkT::kActive) {
      const bool core_keyed = e.kind == EvKind::kSegmentEnd ||
                              e.kind == EvKind::kOverheadEnd;
      sink_.BeginDispatch(EventKey(e), core_keyed,
                          core_keyed ? e.core : DeliveryRank(e));
    } else {
      (void)e;
    }
  }

  /// Cross-shard delivery hook; policies override (the partitioned
  /// engine materializes deferred sleep-queue entries here).
  void OnDeliver(const Event<JobT>& /*ev*/) {}

  /// Deterministic mailbox tiebreak among equal packed keys: both
  /// cross-lane event kinds (timer wake-ups, migration arrivals) are
  /// per-task and a task has at most one in flight, so the task index
  /// is a total order.
  [[nodiscard]] static std::size_t DeliveryRank(const Event<JobT>& e) {
    return e.kind == EvKind::kMigrationArrival ? e.job->task_idx
                                               : e.task_idx;
  }

  [[nodiscard]] bool IsRemoteLane(std::uint32_t core) const {
    return router_ != nullptr && core != lane_;
  }

  [[nodiscard]] std::size_t NumTasks() const { return num_tasks_; }

  void Push(Event<JobT> e) {
    if (IsRemoteLane(e.core)) {
      router_->Deliver(e);  // seq assigned by the receiving lane
      return;
    }
    PushLocal(e);
  }

  void PushLocal(Event<JobT>& e) {
    e.seq = ++ev_seq_;
    events_.push(EventKey(e), e);
  }

  /// Create the job object for task ti's release at now_ and mark the
  /// task active. `core` is the (fixed) core whose arena hosts the
  /// task's job slot; the previous (dead) job is recycled here. Policy
  /// fills its own fields (budgets etc.) afterwards.
  JobT* NewJob(std::size_t ti, std::uint32_t core) {
    TaskRtT& tr = tasks_[ti];
    JobT* j;
    if (kcfg_.job_arena) {
      util::SlabArena<JobT>& arena = CoreAt(core).job_arena;
      if (tr.last_job != nullptr) arena.destroy(tr.last_job);
      j = arena.create();
      tr.last_job = j;
    } else {
      // PR-2 allocation pattern (bench A/B only): one heap allocation
      // per release, never freed until the run ends.
      jobs_legacy_.push_back(std::make_unique<JobT>());
      j = jobs_legacy_.back().get();
    }
    j->task_idx = ti;
    j->seq = ++tr.stats.released;
    j->release_time = now_;
    j->abs_deadline = now_ + policy().DeadlineOf(ti);
    j->exec_remaining = SampleExec(ti);
    tr.active = true;
    tr.last_release = now_;
    return j;
  }

  Time SampleExec(std::size_t ti) {
    const Time c = policy().WcetOf(ti);
    switch (kcfg_.exec.kind) {
      case ExecModel::Kind::kAlwaysWcet:
        return c;
      case ExecModel::Kind::kFraction:
        return std::max<Time>(
            1, static_cast<Time>(kcfg_.exec.fraction *
                                 static_cast<double>(c)));
      case ExecModel::Kind::kUniform: {
        std::uniform_real_distribution<double> d(kcfg_.exec.lo_fraction,
                                                 kcfg_.exec.hi_fraction);
        return std::max<Time>(
            1, static_cast<Time>(d(tasks_[ti].exec_rng) *
                                 static_cast<double>(c)));
      }
      case ExecModel::Kind::kSpiky: {
        // One draw per release whether or not it spikes, so the stream
        // position is a pure function of the release index.
        std::uniform_real_distribution<double> d(0.0, 1.0);
        const bool spike = d(tasks_[ti].exec_rng) < kcfg_.exec.spike_prob;
        if (!spike) return c;
        return std::max<Time>(
            1, static_cast<Time>(kcfg_.exec.spike_magnitude *
                                 static_cast<double>(c)));
      }
    }
    return c;
  }

  /// Next inter-arrival distance per the arrival model (see ArrivalModel
  /// for the semantics of each kind).
  Time SampleInterArrival(std::size_t ti) {
    const Time t = policy().PeriodOf(ti);
    util::SplitMix64& rng = tasks_[ti].arrival_rng;
    switch (kcfg_.arrivals.kind) {
      case ArrivalModel::Kind::kPeriodic:
        return t;
      case ArrivalModel::Kind::kSporadicUniformDelay: {
        std::uniform_real_distribution<double> d(
            0.0, kcfg_.arrivals.max_delay_fraction);
        return t + static_cast<Time>(d(rng) * static_cast<double>(t));
      }
      case ArrivalModel::Kind::kJittered: {
        // release_k = k*T + j_k: the gap is T + j_k - j_{k-1}, so jitter
        // is bounded around the nominal grid and never accumulates.
        std::uniform_real_distribution<double> d(
            0.0, kcfg_.arrivals.jitter_fraction);
        const Time j = static_cast<Time>(d(rng) * static_cast<double>(t));
        TaskRtT& tr = tasks_[ti];
        const Time gap = t + j - tr.last_jitter;
        tr.last_jitter = j;
        return std::max<Time>(1, gap);
      }
      case ArrivalModel::Kind::kBursty: {
        std::uniform_real_distribution<double> d(0.0, 1.0);
        if (d(rng) < kcfg_.arrivals.burst_prob) return t;
        std::uniform_real_distribution<double> g(
            0.0, kcfg_.arrivals.burst_gap_fraction);
        return t + static_cast<Time>(g(rng) * static_cast<double>(t));
      }
    }
    return t;
  }

  void Trace(trace::EventKind k, std::uint32_t core, const JobT* j,
             trace::OverheadKind ovh = trace::OverheadKind::kNone,
             Time dur = 0, Time at = -1) {
    if constexpr (!SinkT::kActive) {
      (void)k; (void)core; (void)j; (void)ovh; (void)dur; (void)at;
    } else {
      if (!sink_.tracing()) return;
      trace::Event e;
      e.time = at < 0 ? now_ : at;
      e.core = core;
      e.kind = k;
      e.overhead = ovh;
      if (j != nullptr) {
        e.task = policy().TaskIdOf(j->task_idx);
        e.job = j->seq;
      }
      e.duration = dur;
      sink_.Record(e);
    }
  }

  void AccountOverhead(std::uint32_t c, trace::OverheadKind kind, Time dur) {
    CoreStats& s = CoreStatsAt(c);
    switch (kind) {
      case trace::OverheadKind::kRls: s.overhead_rls += dur; break;
      case trace::OverheadKind::kSch: s.overhead_sch += dur; break;
      case trace::OverheadKind::kCnt1: s.overhead_cnt1 += dur; break;
      case trace::OverheadKind::kCnt2: s.overhead_cnt2 += dur; break;
      default: break;
    }
  }

  /// Burn `cost` of core time starting no earlier than now_, tagged for
  /// the stats/trace, and (re)arm the overhead-end event. `who` labels the
  /// trace event (defaults to whichever job the core is holding).
  void BurnOverhead(std::uint32_t c, trace::OverheadKind kind, Time cost,
                    const JobT* who = nullptr) {
    Core& core = CoreAt(c);
    const Time base = std::max(now_, core.busy_until);
    if (cost > 0) {
      if (who == nullptr) {
        who = core.running != nullptr ? core.running : core.pending_start;
      }
      Trace(trace::EventKind::kOverheadBegin, c, who, kind, cost, base);
      AccountOverhead(c, kind, cost);
      sink_.OnOverhead(c, base, cost);
    }
    core.busy_until = base + cost;
    ++core.epoch;
    Push(Event<JobT>{.t = core.busy_until, .kind = EvKind::kOverheadEnd,
                     .core = c, .epoch = core.epoch});
  }

  /// Book the running segment's progress [seg_start, now_] against the
  /// job and the core's stats, and feed the metrics stream. The single
  /// place execution time is accounted (both engines' segment-end
  /// handlers and SuspendRunning go through here).
  Time BookProgress(std::uint32_t c, JobT* j) {
    Core& core = CoreAt(c);
    const Time progress = now_ - core.seg_start;
    j->charge(progress);
    CoreStatsAt(c).busy_exec += progress;
    sink_.OnExec(c, core.seg_start, now_);
    return progress;
  }

  /// Suspend the running job mid-segment: book its progress, invalidate
  /// the armed segment end, leave the core in the overhead state.
  void SuspendRunning(std::uint32_t c) {
    Core& core = CoreAt(c);
    JobT* j = core.running;
    assert(core.state == CoreState::kExec && j != nullptr);
    BookProgress(c, j);
    ++core.epoch;  // invalidate the armed segment-end
    core.state = CoreState::kOvh;
  }

  /// Completion bookkeeping shared by both engines: response-time stats,
  /// deadline check, optional halt-on-first-miss.
  void RecordCompletion(std::uint32_t c, JobT* j) {
    TaskRtT& tr = tasks_[j->task_idx];
    Trace(trace::EventKind::kFinish, c, j);
    ++tr.stats.completed;
    const Time response = now_ - j->release_time;
    tr.stats.max_response = std::max(tr.stats.max_response, response);
    tr.response_sum += static_cast<double>(response);
    sink_.OnCompletion(j->task_idx, response, now_ - j->abs_deadline);
    if (now_ > j->abs_deadline) {
      ++tr.stats.deadline_misses;
      ++result_.total_misses;
      Trace(trace::EventKind::kDeadlineMiss, c, j);
      if (kcfg_.stop_on_first_miss) halted_ = true;
    }
  }

  /// Close the observability streams for this kernel's local cores: the
  /// in-flight execution segment is booked up to the horizon (it has no
  /// segment-end event inside the horizon, so BookProgress never sees
  /// it), then the sink fills trailing idle. No-op under NullSink.
  void FinalizeObservability() {
    if constexpr (SinkT::kActive) {
      if (!sink_.metrics()) return;
      for (std::uint32_t c = 0; c < kcfg_.num_cores; ++c) {
        if (router_ != nullptr && c != lane_) continue;
        Core& core = CoreAt(c);
        if (core.state == CoreState::kExec && core.running != nullptr) {
          const Time end =
              std::min(halted_ ? now_ : kcfg_.horizon, kcfg_.horizon);
          if (end > core.seg_start) sink_.OnExec(c, core.seg_start, end);
        }
      }
      sink_.CloseSpan(halted_);
    }
  }

  SimResult Finalize() {
    result_.simulated = std::min(now_, kcfg_.horizon);
    // Unfinished jobs whose deadline already passed are misses too. The
    // in-flight job's ACTUAL release is tracked (not reconstructed from
    // next_release, which would be off by the slack under sporadic
    // arrivals and undercount end-of-horizon misses).
    FinalizeTasksInto(result_);
    result_.event_ops = events_.counters();
    policy().CollectQueueStats(result_);
    FinalizeObservability();
    if constexpr (SinkT::kActive) {
      if (sink_.tracing()) {
        if (kcfg_.trace_drain != nullptr) {
          // Streaming mode: flush the remainder and report the stream's
          // bounds; the canonical trace went through the drain, so
          // SimResult::trace_events stays empty (bounded memory is the
          // point).
          StreamDrainBelow(kNoEventKey);
          kcfg_.trace_drain->OnFinish(drain_stats_);
        } else {
          result_.trace_events = obs::MergeTraceBuffers({&sink_.buffer()});
        }
      }
      if (sink_.metrics()) result_.metrics = sink_.TakeMetrics();
    }
    return std::move(result_);
  }

  /// Serial-loop streaming drain: pop the finalized prefix (stamp key
  /// strictly below `limit`), already stamp-sorted by DrainBelow, and
  /// hand it to the configured TraceDrain.
  void StreamDrainBelow(std::uint64_t limit) {
    if constexpr (SinkT::kActive) {
      drain_stats_.peak_resident =
          std::max(drain_stats_.peak_resident, sink_.buffer().size());
      drain_run_.clear();
      sink_.buffer_mut().DrainBelow(limit, drain_run_);
      if (drain_run_.empty()) return;
      drain_batch_.clear();
      drain_batch_.reserve(drain_run_.size());
      for (const obs::StampedEvent& e : drain_run_) {
        drain_batch_.push_back(e.event);
      }
      kcfg_.trace_drain->OnEvents(drain_batch_);
      ++drain_stats_.batches;
      drain_stats_.events += drain_batch_.size();
    }
  }

  KernelConfig kcfg_;
  std::vector<Core> cores_;
  /// Task run state: owned in serial runs, shared across shards in
  /// sharded runs (see ShardContext).
  std::vector<TaskRtT> tasks_own_;
  TaskRtT* tasks_ = nullptr;
  std::size_t num_tasks_ = 0;
  std::vector<std::unique_ptr<JobT>> jobs_legacy_;  ///< job_arena=false only
  EventQueueT events_;
  /// Folds core indices to the local slot: identity in serial mode, 0 in
  /// shard mode (the lane materializes only its own core's state).
  std::uint32_t core_slot_mask_ = ~0u;
  SinkT sink_;
  std::uint32_t lane_ = 0;
  ShardRouter<JobT>* router_ = nullptr;
  Time now_ = 0;
  std::uint64_t ev_seq_ = 0;
  bool halted_ = false;
  /// Streaming-window scratch (serial loop only; reused across drains so
  /// the steady state allocates nothing).
  std::vector<obs::StampedEvent> drain_run_;
  std::vector<trace::Event> drain_batch_;
  obs::TraceStreamStats drain_stats_;
  SimResult result_;
};

}  // namespace kernel
}  // namespace sps::sim
