#pragma once
// Global multiprocessor scheduler — the paper's introduction contrasts
// semi-partitioned scheduling with the GLOBAL approach ("each task can
// execute on any available processor at run time"); this engine makes the
// comparison executable. One shared ready queue feeds all cores; at any
// instant the m highest-key ready/running jobs occupy the m cores, and
// jobs migrate freely at dispatch time. Inactive tasks wait in one shared
// sleep queue keyed by next release, mirroring the partitioned engine's
// structure (and the release_overhead charge, which already prices the
// sleep-queue delete).
//
// Policies: global RM (fixed priorities) and global EDF (absolute
// deadlines). Overheads use the same model as the partitioned engine;
// a job that resumes on a different core than it last ran pays the
// migration CPMD, matching §3's local-vs-migration distinction. Release
// interrupts are handled by a fixed per-task core (task id mod m), the
// usual staggered-timer-affinity arrangement.
//
// Like the partitioned engine, this one is a thin POLICY on the shared
// kernel (sim/kernel.hpp), and both its queues are runtime-selectable
// (GlobalSimConfig::ready_backend / sleep_backend).
//
// The Dhall effect (tests/test_global.cpp, bench_global_vs_partitioned)
// falls straight out of this engine: m tiny tasks + one heavy task miss
// deadlines under global RM on every m, while any partitioned placement
// is trivially schedulable — the paper's opening argument.

#include "containers/queue_traits.hpp"
#include "overhead/model.hpp"
#include "rt/taskset.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"

namespace sps::sim {

enum class GlobalPolicy {
  kGlobalRm,   ///< fixed RM priorities, globally highest-priority-first
  kGlobalEdf,  ///< earliest absolute deadline first
};

struct GlobalSimConfig {
  unsigned num_cores = 4;
  Time horizon = Millis(1000);
  overhead::OverheadModel overheads = overhead::OverheadModel::Zero();
  ExecModel exec = {};
  ArrivalModel arrivals = {};
  GlobalPolicy policy = GlobalPolicy::kGlobalRm;
  bool record_trace = false;
  /// Streaming metrics, as in SimConfig (DESIGN.md §10): per-task
  /// response/tardiness histograms + per-core busy/overhead/idle rows in
  /// SimResult::metrics.
  bool record_metrics = false;
  bool stop_on_first_miss = false;
  /// Queue backends (DESIGN.md §6 ablation), as in SimConfig.
  containers::QueueBackend ready_backend =
      containers::QueueBackend::kBinomialHeap;
  containers::QueueBackend sleep_backend = containers::QueueBackend::kRbTree;
  containers::QueueBackend event_backend =
      containers::QueueBackend::kBinomialHeap;
};

/// Run the task set under global scheduling. Requires assigned priorities
/// for kGlobalRm. Returns the same statistics structure as the
/// partitioned engine (migrations here count every resume on a different
/// core than the job last ran on).
SimResult SimulateGlobal(const rt::TaskSet& ts, const GlobalSimConfig& cfg,
                         trace::Recorder* recorder = nullptr);

}  // namespace sps::sim
