#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <queue>

#include "containers/binomial_heap.hpp"
#include "containers/rb_tree.hpp"

namespace sps::sim {

namespace {

using partition::PlacedTask;

struct Job {
  std::size_t task_idx = 0;
  std::uint64_t seq = 0;          ///< job number within its task
  Time release_time = 0;
  Time abs_deadline = 0;
  Time exec_remaining = 0;        ///< actual execution left (CPMD included)
  Time budget_remaining = 0;      ///< current subtask's budget left
  std::size_t part = 0;           ///< current subtask index
  Time cpmd_pending = 0;          ///< reload cost to charge at next start
};

struct ReadyItem {
  /// Scheduling key: the fixed per-core priority under FP, the absolute
  /// window deadline under EDF. Smaller = runs first, both ways.
  std::uint64_t key = 0;
  std::uint64_t order = 0;  ///< FIFO tie-break / determinism
  Job* job = nullptr;
};

struct ReadyLess {
  bool operator()(const ReadyItem& a, const ReadyItem& b) const {
    if (a.key != b.key) return a.key < b.key;
    return a.order < b.order;
  }
};

using ReadyQueue = containers::BinomialHeap<ReadyItem, ReadyLess>;
using SleepQueue = containers::RbTree<Time, std::size_t>;

enum class CoreState { kIdle, kExec, kOvh };

struct Core {
  ReadyQueue ready;
  SleepQueue sleep;
  CoreState state = CoreState::kIdle;
  Job* running = nullptr;        ///< executing, or suspended mid-overhead
  Job* pending_start = nullptr;  ///< picked by sch(), waiting for overhead
  bool need_sched = false;
  Time busy_until = 0;
  Time seg_start = 0;
  std::uint64_t epoch = 0;  ///< invalidates stale core events
};

enum class EvKind : std::uint8_t {
  kTimer,             // task release (task_idx)
  kOverheadEnd,       // core finished its overhead window (core, epoch)
  kSegmentEnd,        // running segment ended (core, epoch)
  kMigrationArrival,  // job lands on destination core (core, job)
};

struct Ev {
  Time t = 0;
  std::uint64_t seq = 0;
  EvKind kind = EvKind::kTimer;
  std::uint32_t core = 0;
  std::size_t task_idx = 0;
  std::uint64_t epoch = 0;
  Job* job = nullptr;
};

/// Same-instant ordering matters twice over: a segment that completes
/// exactly when a timer fires must finish BEFORE the release is handled
/// (otherwise the done job is "preempted" with zero work left and its
/// completion slips past the boundary), and all releases/arrivals must
/// land in the ready queues BEFORE any dispatch (overhead end) at the
/// same instant, or the scheduler briefly starts a job it immediately
/// preempts. Rank: segment ends, then timers, then migration arrivals,
/// then dispatches; ties by insertion order.
inline int EvRank(EvKind k) {
  switch (k) {
    case EvKind::kSegmentEnd: return 0;
    case EvKind::kTimer: return 1;
    case EvKind::kMigrationArrival: return 2;
    case EvKind::kOverheadEnd: return 3;
  }
  return 4;
}

struct EvLater {
  bool operator()(const Ev& a, const Ev& b) const {
    if (a.t != b.t) return a.t > b.t;
    const int ra = EvRank(a.kind);
    const int rb = EvRank(b.kind);
    if (ra != rb) return ra > rb;
    return a.seq > b.seq;
  }
};

struct TaskRt {
  const PlacedTask* pt = nullptr;
  bool active = false;
  Time next_release = 0;  ///< nominal release of the NEXT job
  SleepQueue::handle sleep_handle = nullptr;
  // stats
  TaskStats stats;
  double response_sum = 0.0;
};

class Engine {
 public:
  Engine(const partition::Partition& p, const SimConfig& cfg,
         trace::Recorder* rec)
      : p_(p), cfg_(cfg), rec_(rec), cores_(p.num_cores),
        tasks_(p.tasks.size()), rng_(cfg.exec.seed),
        arrival_rng_(cfg.arrivals.seed) {
    for (std::size_t i = 0; i < p.tasks.size(); ++i) {
      tasks_[i].pt = &p.tasks[i];
      tasks_[i].stats.id = p.tasks[i].task.id;
    }
    result_.cores.resize(p.num_cores);
    // Static queue-size parameter N per core, as in the analysis.
    n_of_core_.resize(p.num_cores);
    for (partition::CoreId c = 0; c < p.num_cores; ++c) {
      n_of_core_[c] = std::max<std::size_t>(1, p.entries_on(c));
    }
  }

  SimResult Run() {
    // All tasks start in their first core's sleep queue, waking at t=0
    // (synchronous release — the critical instant).
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      const partition::CoreId c = FirstCore(i);
      tasks_[i].sleep_handle = cores_[c].sleep.insert(0, i);
      tasks_[i].next_release = 0;
      Push(Ev{.t = 0, .kind = EvKind::kTimer, .core = c, .task_idx = i});
    }

    while (!events_.empty() && !halted_) {
      const Ev ev = events_.top();
      events_.pop();
      if (ev.t > cfg_.horizon) break;
      now_ = ev.t;
      Dispatch(ev);
    }
    return Finalize();
  }

 private:
  // ---- helpers ----------------------------------------------------------

  partition::CoreId FirstCore(std::size_t ti) const {
    return tasks_[ti].pt->parts[0].core;
  }

  const rt::Task& TaskOf(std::size_t ti) const { return tasks_[ti].pt->task; }

  void Push(Ev e) {
    e.seq = ++ev_seq_;
    events_.push(e);
  }

  void Trace(trace::EventKind k, std::uint32_t core, const Job* j,
             trace::OverheadKind ovh = trace::OverheadKind::kNone,
             Time dur = 0, Time at = -1) {
    if (rec_ == nullptr || !rec_->enabled()) return;
    trace::Event e;
    e.time = at < 0 ? now_ : at;
    e.core = core;
    e.kind = k;
    e.overhead = ovh;
    if (j != nullptr) {
      e.task = TaskOf(j->task_idx).id;
      e.job = j->seq;
    }
    e.duration = dur;
    rec_->record(e);
  }

  /// Ready-queue ordering key of the job's CURRENT subtask: fixed
  /// priority under FP; absolute window deadline under EDF (a split
  /// part's window end, the task deadline for normal tasks).
  std::uint64_t CurKey(const Job* j) const {
    const auto& part = tasks_[j->task_idx].pt->parts[j->part];
    if (p_.policy == partition::SchedPolicy::kFixedPriority) {
      return part.local_priority;
    }
    const Time rel = part.rel_deadline > 0 ? part.rel_deadline
                                           : TaskOf(j->task_idx).deadline;
    return static_cast<std::uint64_t>(j->release_time + rel);
  }

  Time SampleExec(std::size_t ti) {
    const Time c = TaskOf(ti).wcet;
    switch (cfg_.exec.kind) {
      case ExecModel::Kind::kAlwaysWcet:
        return c;
      case ExecModel::Kind::kFraction:
        return std::max<Time>(
            1, static_cast<Time>(cfg_.exec.fraction *
                                 static_cast<double>(c)));
      case ExecModel::Kind::kUniform: {
        std::uniform_real_distribution<double> d(cfg_.exec.lo_fraction,
                                                 cfg_.exec.hi_fraction);
        return std::max<Time>(
            1, static_cast<Time>(d(rng_) * static_cast<double>(c)));
      }
    }
    return c;
  }

  /// Next inter-arrival distance: exactly T (periodic) or T plus a
  /// uniform sporadic slack.
  Time SampleInterArrival(std::size_t ti) {
    const Time t = TaskOf(ti).period;
    if (cfg_.arrivals.kind == ArrivalModel::Kind::kPeriodic) return t;
    std::uniform_real_distribution<double> d(
        0.0, cfg_.arrivals.max_delay_fraction);
    return t + static_cast<Time>(d(arrival_rng_) * static_cast<double>(t));
  }

  void AccountOverhead(std::uint32_t c, trace::OverheadKind kind, Time dur) {
    CoreStats& s = result_.cores[c];
    switch (kind) {
      case trace::OverheadKind::kRls: s.overhead_rls += dur; break;
      case trace::OverheadKind::kSch: s.overhead_sch += dur; break;
      case trace::OverheadKind::kCnt1: s.overhead_cnt1 += dur; break;
      case trace::OverheadKind::kCnt2: s.overhead_cnt2 += dur; break;
      default: break;
    }
  }

  /// Burn `cost` of core time starting no earlier than now_, tagged for
  /// the stats/trace, and (re)arm the overhead-end event. `who` labels the
  /// trace event (defaults to whichever job the core is holding).
  void BurnOverhead(std::uint32_t c, trace::OverheadKind kind, Time cost,
                    const Job* who = nullptr) {
    Core& core = cores_[c];
    const Time base = std::max(now_, core.busy_until);
    if (cost > 0) {
      if (who == nullptr) {
        who = core.running != nullptr ? core.running : core.pending_start;
      }
      Trace(trace::EventKind::kOverheadBegin, c, who, kind, cost, base);
      AccountOverhead(c, kind, cost);
    }
    core.busy_until = base + cost;
    ++core.epoch;
    Push(Ev{.t = core.busy_until, .kind = EvKind::kOverheadEnd, .core = c,
            .epoch = core.epoch});
  }

  /// Suspend execution (if any), account progress, queue a scheduling
  /// decision after `cost` of overhead.
  void InterruptCore(std::uint32_t c, trace::OverheadKind kind, Time cost) {
    Core& core = cores_[c];
    if (core.state == CoreState::kExec) {
      SuspendRunning(c);
    }
    if (core.pending_start != nullptr) {
      // A decision was in flight; fold the picked job back into the ready
      // queue so the new decision sees a consistent picture.
      core.ready.push(ReadyItem{CurKey(core.pending_start), ++order_seq_,
                                core.pending_start});
      core.pending_start = nullptr;
    }
    core.state = CoreState::kOvh;
    core.need_sched = true;
    BurnOverhead(c, kind, cost);
  }

  void SuspendRunning(std::uint32_t c) {
    Core& core = cores_[c];
    Job* j = core.running;
    assert(core.state == CoreState::kExec && j != nullptr);
    const Time progress = now_ - core.seg_start;
    j->exec_remaining -= progress;
    j->budget_remaining -= progress;
    result_.cores[c].busy_exec += progress;
    ++core.epoch;  // invalidate the armed segment-end
    core.state = CoreState::kOvh;
  }

  // ---- event dispatch ----------------------------------------------------

  void Dispatch(const Ev& ev) {
    switch (ev.kind) {
      case EvKind::kTimer: OnTimer(ev); break;
      case EvKind::kOverheadEnd: OnOverheadEnd(ev); break;
      case EvKind::kSegmentEnd: OnSegmentEnd(ev); break;
      case EvKind::kMigrationArrival: OnMigrationArrival(ev); break;
    }
  }

  void OnTimer(const Ev& ev) {
    const std::size_t ti = ev.task_idx;
    TaskRt& tr = tasks_[ti];
    const std::uint32_t c = ev.core;
    Core& core = cores_[c];
    assert(!tr.active && tr.sleep_handle != nullptr);

    // The timer handler removes the task from this core's sleep queue and
    // release() inserts it into the ready queue: the paper's rls path.
    core.sleep.erase(tr.sleep_handle);
    tr.sleep_handle = nullptr;

    auto job = std::make_unique<Job>();
    Job* j = job.get();
    jobs_.push_back(std::move(job));
    j->task_idx = ti;
    j->seq = ++tr.stats.released;
    j->release_time = now_;
    j->abs_deadline = now_ + TaskOf(ti).deadline;
    j->exec_remaining = SampleExec(ti);
    // The LAST subtask (or a normal task) runs to completion — its budget
    // is never enforced (the paper's tail subtasks finish, not migrate).
    j->budget_remaining = tr.pt->parts.size() > 1
                              ? tr.pt->parts[0].budget
                              : kTimeNever;
    j->part = 0;
    tr.active = true;
    tr.next_release = now_ + SampleInterArrival(ti);

    Trace(trace::EventKind::kRelease, c, j);
    core.ready.push(ReadyItem{CurKey(j), ++order_seq_, j});

    const Time cost = cfg_.overheads.release_overhead(n_of_core_[c]);
    InterruptCore(c, trace::OverheadKind::kRls, cost);
  }

  void OnOverheadEnd(const Ev& ev) {
    Core& core = cores_[ev.core];
    if (ev.epoch != core.epoch || core.state != CoreState::kOvh) return;

    if (core.pending_start != nullptr) {
      Job* j = core.pending_start;
      core.pending_start = nullptr;
      core.running = j;
      StartSegment(ev.core);
      return;
    }

    if (core.need_sched) {
      core.need_sched = false;
      MakeSchedulingDecision(ev.core);
      return;
    }

    // Nothing to decide: resume the suspended job or go idle.
    if (core.running != nullptr) {
      StartSegment(ev.core);
    } else {
      core.state = CoreState::kIdle;
      Trace(trace::EventKind::kIdle, ev.core, nullptr);
    }
  }

  /// The sch() handler: pick the highest-priority ready job, requeue the
  /// current one on preemption, charge the corresponding costs, and leave
  /// the winner in pending_start for the post-overhead switch-in.
  void MakeSchedulingDecision(std::uint32_t c) {
    Core& core = cores_[c];
    const std::size_t n = n_of_core_[c];
    const bool have_top = !core.ready.empty();

    if (core.running != nullptr) {
      const std::uint64_t run_key = CurKey(core.running);
      if (have_top && core.ready.top().key < run_key) {
        // Preemption: requeue current, switch to top.
        Job* preempted = core.running;
        core.running = nullptr;
        Trace(trace::EventKind::kPreempt, c, preempted);
        ++tasks_[preempted->task_idx].stats.preemptions;
        ++result_.total_preemptions;
        preempted->cpmd_pending = std::max(
            preempted->cpmd_pending, cfg_.overheads.cpmd(false));
        const ReadyItem top = core.ready.pop();
        core.ready.push(ReadyItem{run_key, ++order_seq_, preempted});
        core.pending_start = top.job;
        ++result_.cores[c].context_switches;
        BurnOverhead(c, trace::OverheadKind::kSch,
                     cfg_.overheads.sched_overhead(n, true));
        BurnOverhead(c, trace::OverheadKind::kCnt1,
                     cfg_.overheads.ctxsw_in_overhead());
      } else {
        // Keep running the current job; sch() only inspected the queue.
        core.pending_start = core.running;
        core.running = nullptr;
        BurnOverhead(c, trace::OverheadKind::kSch,
                     cfg_.overheads.scaled(cfg_.overheads.sched_exec));
      }
    } else if (have_top) {
      const ReadyItem top = core.ready.pop();
      core.pending_start = top.job;
      ++result_.cores[c].context_switches;
      BurnOverhead(c, trace::OverheadKind::kSch,
                   cfg_.overheads.sched_overhead(n, false));
      BurnOverhead(c, trace::OverheadKind::kCnt1,
                   cfg_.overheads.ctxsw_in_overhead());
    } else {
      core.state = CoreState::kIdle;
      Trace(trace::EventKind::kIdle, c, nullptr);
    }
  }

  void StartSegment(std::uint32_t c) {
    Core& core = cores_[c];
    Job* j = core.running;
    assert(j != nullptr);
    if (j->cpmd_pending > 0) {
      // Working-set reload (Figure 1 "cache"): occupies the CPU like task
      // code, but is NOT charged against the subtask budget — budgets
      // meter task execution, so the reload extends both counters in
      // lockstep. (Otherwise reload time would silently displace real work
      // onto later subtasks, which no analysis accounts for.)
      j->exec_remaining += j->cpmd_pending;
      if (j->budget_remaining < kTimeNever / 2) {
        j->budget_remaining += j->cpmd_pending;
      }
      result_.cores[c].cpmd_charged += j->cpmd_pending;
      Trace(trace::EventKind::kOverheadBegin, c, j,
            trace::OverheadKind::kCache, j->cpmd_pending);
      j->cpmd_pending = 0;
    }
    core.state = CoreState::kExec;
    core.seg_start = now_;
    const Time len = std::min(j->exec_remaining, j->budget_remaining);
    ++core.epoch;
    Push(Ev{.t = now_ + len, .kind = EvKind::kSegmentEnd, .core = c,
            .epoch = core.epoch});
    Trace(trace::EventKind::kStart, c, j);
  }

  void OnSegmentEnd(const Ev& ev) {
    Core& core = cores_[ev.core];
    if (ev.epoch != core.epoch || core.state != CoreState::kExec) return;
    Job* j = core.running;
    const Time progress = now_ - core.seg_start;
    j->exec_remaining -= progress;
    j->budget_remaining -= progress;
    result_.cores[ev.core].busy_exec += progress;

    if (j->exec_remaining <= 0) {
      FinishJob(ev.core, j);
    } else {
      MigrateJob(ev.core, j);
    }
  }

  void FinishJob(std::uint32_t c, Job* j) {
    Core& core = cores_[c];
    TaskRt& tr = tasks_[j->task_idx];

    Trace(trace::EventKind::kFinish, c, j);
    ++tr.stats.completed;
    const Time response = now_ - j->release_time;
    tr.stats.max_response = std::max(tr.stats.max_response, response);
    tr.response_sum += static_cast<double>(response);
    if (now_ > j->abs_deadline) {
      ++tr.stats.deadline_misses;
      ++result_.total_misses;
      Trace(trace::EventKind::kDeadlineMiss, c, j);
      if (cfg_.stop_on_first_miss) halted_ = true;
    }

    // Back to the sleep queue of the core hosting the FIRST subtask
    // (paper §2: tail subtasks return there; normal tasks sleep locally).
    const partition::CoreId first = FirstCore(j->task_idx);
    // Finishing exactly at the next release boundary is fine: the timer
    // fires at the same instant, after this finish (event order), and
    // finds the task asleep. Only strictly-passed releases are overruns.
    Time wake = tr.next_release;
    while (wake < now_) {
      wake += SampleInterArrival(j->task_idx);
      ++tr.stats.shed;
      Trace(trace::EventKind::kJobShed, first, j, trace::OverheadKind::kNone,
            0, wake);
    }
    tr.next_release = wake;
    tr.sleep_handle = cores_[first].sleep.insert(wake, j->task_idx);
    tr.active = false;
    Push(Ev{.t = wake, .kind = EvKind::kTimer, .core = first,
            .task_idx = j->task_idx});

    const Time cost =
        (c == first)
            ? cfg_.overheads.finish_overhead_normal(n_of_core_[c])
            : cfg_.overheads.finish_overhead_tail(n_of_core_[first]);
    core.running = nullptr;
    core.state = CoreState::kOvh;
    core.need_sched = true;
    BurnOverhead(c, trace::OverheadKind::kCnt2, cost, j);
  }

  void MigrateJob(std::uint32_t c, Job* j) {
    Core& core = cores_[c];
    const PlacedTask& pt = *tasks_[j->task_idx].pt;
    assert(j->part + 1 < pt.parts.size());

    const partition::CoreId dest = pt.parts[j->part + 1].core;
    Trace(trace::EventKind::kMigrateOut, c, j);
    ++tasks_[j->task_idx].stats.migrations;
    ++result_.total_migrations;

    j->part += 1;
    j->budget_remaining = (j->part + 1 == pt.parts.size())
                              ? kTimeNever
                              : pt.parts[j->part].budget;
    j->cpmd_pending = std::max(j->cpmd_pending, cfg_.overheads.cpmd(true));

    const Time cost = cfg_.overheads.migrate_overhead(n_of_core_[dest]);
    core.running = nullptr;
    core.state = CoreState::kOvh;
    core.need_sched = true;
    BurnOverhead(c, trace::OverheadKind::kCnt2, cost, j);

    // The job becomes runnable at the destination once the remote insert
    // completes.
    Push(Ev{.t = now_ + cost, .kind = EvKind::kMigrationArrival,
            .core = dest, .job = j});
  }

  void OnMigrationArrival(const Ev& ev) {
    Job* j = ev.job;
    Core& dest = cores_[ev.core];
    Trace(trace::EventKind::kMigrateIn, ev.core, j);
    dest.ready.push(ReadyItem{CurKey(j), ++order_seq_, j});
    // The insert was paid by the source core; the destination only runs
    // its scheduler (charged in the decision phase).
    InterruptCore(ev.core, trace::OverheadKind::kNone, 0);
  }

  SimResult Finalize() {
    result_.simulated = std::min(now_, cfg_.horizon);
    // Unfinished jobs whose deadline already passed are misses too.
    for (TaskRt& tr : tasks_) {
      if (tr.active) {
        // Find the in-flight job: it is whichever job of this task is
        // still live; the deadline check needs only the release time.
        // (next_release - period) is the release of the active job.
        const Time release = tr.next_release - TaskOf(&tr - tasks_.data())
                                                   .period;
        const Time deadline =
            release + TaskOf(&tr - tasks_.data()).deadline;
        if (deadline <= cfg_.horizon) {
          ++tr.stats.deadline_misses;
          ++result_.total_misses;
        }
      }
      if (tr.stats.completed > 0) {
        tr.stats.avg_response =
            tr.response_sum / static_cast<double>(tr.stats.completed);
      }
      result_.tasks.push_back(tr.stats);
    }
    return std::move(result_);
  }

  const partition::Partition& p_;
  const SimConfig& cfg_;
  trace::Recorder* rec_;
  std::vector<Core> cores_;
  std::vector<TaskRt> tasks_;
  std::vector<std::size_t> n_of_core_;
  std::vector<std::unique_ptr<Job>> jobs_;
  std::priority_queue<Ev, std::vector<Ev>, EvLater> events_;
  std::mt19937_64 rng_;
  std::mt19937_64 arrival_rng_;
  Time now_ = 0;
  std::uint64_t ev_seq_ = 0;
  std::uint64_t order_seq_ = 0;
  bool halted_ = false;
  SimResult result_;
};

}  // namespace

Time SimResult::total_overhead() const {
  Time t = 0;
  for (const CoreStats& c : cores) {
    t += c.overhead_rls + c.overhead_sch + c.overhead_cnt1 + c.overhead_cnt2;
  }
  return t;
}

std::string SimResult::summary() const {
  std::string out;
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "simulated %.1fms: %llu misses, %llu migrations, %llu "
                "preemptions, overhead %.1fus\n",
                ToMillis(simulated),
                static_cast<unsigned long long>(total_misses),
                static_cast<unsigned long long>(total_migrations),
                static_cast<unsigned long long>(total_preemptions),
                ToMicros(total_overhead()));
  out += buf;
  for (const TaskStats& t : tasks) {
    std::snprintf(buf, sizeof(buf),
                  "  tau%-3u released=%-6llu completed=%-6llu misses=%llu "
                  "maxR=%.3fms avgR=%.3fms migr=%llu preempt=%llu\n",
                  t.id, static_cast<unsigned long long>(t.released),
                  static_cast<unsigned long long>(t.completed),
                  static_cast<unsigned long long>(t.deadline_misses),
                  ToMillis(t.max_response), t.avg_response / kMillisecond,
                  static_cast<unsigned long long>(t.migrations),
                  static_cast<unsigned long long>(t.preemptions));
    out += buf;
  }
  return out;
}

SimResult Simulate(const partition::Partition& p, const SimConfig& cfg,
                   trace::Recorder* recorder) {
  Engine engine(p, cfg, recorder);
  return engine.Run();
}

}  // namespace sps::sim
