#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <memory>

#include "sim/kernel.hpp"

namespace sps::sim {

namespace {

using containers::QueueBackend;
using partition::PlacedTask;

struct Job : kernel::JobBase {
  Time budget_remaining = 0;  ///< current subtask's budget left
  std::size_t part = 0;       ///< current subtask index
  Time cpmd_pending = 0;      ///< reload cost to charge at next start

  /// Split budgets meter execution: progress burns WCET and budget in
  /// lockstep (the kernel charges through this hook).
  void charge(Time progress) {
    exec_remaining -= progress;
    budget_remaining -= progress;
  }
};

template <typename SleepQ>
struct TaskRt : kernel::TaskRunBase {
  const PlacedTask* pt = nullptr;
  typename SleepQ::handle sleep_handle = nullptr;
};

/// The partitioned policy's per-core state: one ready and one sleep
/// queue per core, exactly as in the paper's kernel patch.
template <typename ReadyQ, typename SleepQ>
struct PerCoreQueues {
  ReadyQ ready;
  SleepQ sleep;
};

/// The semi-partitioned scheduling policy, hosted on the shared kernel.
/// ReadyQ orders jobs by scheduling key (fixed priority under FP, the
/// absolute window deadline under EDF; FIFO among ties). SleepQ orders
/// inactive tasks by wake-up time.
template <typename ReadyQ, typename SleepQ>
class Engine final
    : public kernel::KernelBase<Engine<ReadyQ, SleepQ>, Job, TaskRt<SleepQ>,
                                PerCoreQueues<ReadyQ, SleepQ>> {
  static_assert(containers::ReadyQueueFor<ReadyQ, std::uint64_t, Job*>);
  static_assert(containers::SleepQueueFor<SleepQ, Time, std::size_t>);

 public:
  using Base = kernel::KernelBase<Engine<ReadyQ, SleepQ>, Job,
                                  TaskRt<SleepQ>, PerCoreQueues<ReadyQ, SleepQ>>;
  friend Base;
  using Ev = kernel::Event<Job>;
  using EvKind = kernel::EvKind;
  using CoreState = kernel::CoreState;
  using Core = typename Base::Core;

  Engine(const partition::Partition& p, const SimConfig& cfg,
         trace::Recorder* rec)
      : Base(kernel::KernelConfig{p.num_cores, cfg.horizon, cfg.overheads,
                                  cfg.exec, cfg.arrivals,
                                  cfg.stop_on_first_miss,
                                  cfg.event_backend},
             p.tasks.size(), rec),
        p_(p) {
    for (std::size_t i = 0; i < p.tasks.size(); ++i) {
      tasks_[i].pt = &p.tasks[i];
      tasks_[i].stats.id = p.tasks[i].task.id;
    }
    // Static queue-size parameter N per core, as in the analysis.
    n_of_core_.resize(p.num_cores);
    for (partition::CoreId c = 0; c < p.num_cores; ++c) {
      n_of_core_[c] = std::max<std::size_t>(1, p.entries_on(c));
    }
  }

  using Base::Run;

 private:
  using Base::cores_;
  using Base::kcfg_;
  using Base::now_;
  using Base::result_;
  using Base::tasks_;

  // ---- kernel policy hooks ----------------------------------------------

  void Boot() {
    // All tasks start in their first core's sleep queue, waking at t=0
    // (synchronous release — the critical instant).
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      const partition::CoreId c = FirstCore(i);
      tasks_[i].sleep_handle = cores_[c].sleep.push(0, i);
      tasks_[i].next_release = 0;
      this->Push(Ev{.t = 0, .kind = EvKind::kTimer, .core = c,
                    .task_idx = i});
    }
  }

  void Dispatch(const Ev& ev) {
    switch (ev.kind) {
      case EvKind::kTimer: OnTimer(ev); break;
      case EvKind::kOverheadEnd: OnOverheadEnd(ev); break;
      case EvKind::kSegmentEnd: OnSegmentEnd(ev); break;
      case EvKind::kMigrationArrival: OnMigrationArrival(ev); break;
    }
  }

  Time WcetOf(std::size_t ti) const { return TaskOf(ti).wcet; }
  Time PeriodOf(std::size_t ti) const { return TaskOf(ti).period; }
  Time DeadlineOf(std::size_t ti) const { return TaskOf(ti).deadline; }
  rt::TaskId TaskIdOf(std::size_t ti) const { return TaskOf(ti).id; }

  void CollectQueueStats(SimResult& r) const {
    for (const Core& core : cores_) {
      r.ready_ops += core.ready.counters();
      r.sleep_ops += core.sleep.counters();
    }
  }

  // ---- helpers ----------------------------------------------------------

  partition::CoreId FirstCore(std::size_t ti) const {
    return tasks_[ti].pt->parts[0].core;
  }

  const rt::Task& TaskOf(std::size_t ti) const { return tasks_[ti].pt->task; }

  /// Ready-queue ordering key of the job's CURRENT subtask: fixed
  /// priority under FP; absolute window deadline under EDF (a split
  /// part's window end, the task deadline for normal tasks).
  std::uint64_t CurKey(const Job* j) const {
    const auto& part = tasks_[j->task_idx].pt->parts[j->part];
    if (p_.policy == partition::SchedPolicy::kFixedPriority) {
      return part.local_priority;
    }
    const Time rel = part.rel_deadline > 0 ? part.rel_deadline
                                           : TaskOf(j->task_idx).deadline;
    return static_cast<std::uint64_t>(j->release_time + rel);
  }

  /// Suspend execution (if any), account progress, queue a scheduling
  /// decision after `cost` of overhead.
  void InterruptCore(std::uint32_t c, trace::OverheadKind kind, Time cost) {
    Core& core = cores_[c];
    if (core.state == CoreState::kExec) {
      this->SuspendRunning(c);
    }
    if (core.pending_start != nullptr) {
      // A decision was in flight; fold the picked job back into the ready
      // queue so the new decision sees a consistent picture.
      core.ready.push(CurKey(core.pending_start), core.pending_start);
      core.pending_start = nullptr;
    }
    core.state = CoreState::kOvh;
    core.need_sched = true;
    this->BurnOverhead(c, kind, cost);
  }

  // ---- event handlers ----------------------------------------------------

  void OnTimer(const Ev& ev) {
    const std::size_t ti = ev.task_idx;
    TaskRt<SleepQ>& tr = tasks_[ti];
    const std::uint32_t c = ev.core;
    Core& core = cores_[c];
    assert(!tr.active && tr.sleep_handle != nullptr);

    // The timer handler removes the task from this core's sleep queue and
    // release() inserts it into the ready queue: the paper's rls path.
    core.sleep.erase(tr.sleep_handle);
    tr.sleep_handle = nullptr;

    Job* j = this->NewJob(ti);
    // The LAST subtask (or a normal task) runs to completion — its budget
    // is never enforced (the paper's tail subtasks finish, not migrate).
    j->budget_remaining = tr.pt->parts.size() > 1 ? tr.pt->parts[0].budget
                                                  : kTimeNever;
    j->part = 0;
    tr.next_release = now_ + this->SampleInterArrival(ti);

    this->Trace(trace::EventKind::kRelease, c, j);
    core.ready.push(CurKey(j), j);

    const Time cost = kcfg_.overheads.release_overhead(n_of_core_[c]);
    InterruptCore(c, trace::OverheadKind::kRls, cost);
  }

  void OnOverheadEnd(const Ev& ev) {
    Core& core = cores_[ev.core];
    if (ev.epoch != core.epoch || core.state != CoreState::kOvh) return;

    if (core.pending_start != nullptr) {
      Job* j = core.pending_start;
      core.pending_start = nullptr;
      core.running = j;
      StartSegment(ev.core);
      return;
    }

    if (core.need_sched) {
      core.need_sched = false;
      MakeSchedulingDecision(ev.core);
      return;
    }

    // Nothing to decide: resume the suspended job or go idle.
    if (core.running != nullptr) {
      StartSegment(ev.core);
    } else {
      core.state = CoreState::kIdle;
      this->Trace(trace::EventKind::kIdle, ev.core, nullptr);
    }
  }

  /// The sch() handler: pick the highest-priority ready job, requeue the
  /// current one on preemption, charge the corresponding costs, and leave
  /// the winner in pending_start for the post-overhead switch-in.
  void MakeSchedulingDecision(std::uint32_t c) {
    Core& core = cores_[c];
    const std::size_t n = n_of_core_[c];
    const bool have_top = !core.ready.empty();

    if (core.running != nullptr) {
      const std::uint64_t run_key = CurKey(core.running);
      if (have_top && core.ready.min_key() < run_key) {
        // Preemption: requeue current, switch to top.
        Job* preempted = core.running;
        core.running = nullptr;
        this->Trace(trace::EventKind::kPreempt, c, preempted);
        ++tasks_[preempted->task_idx].stats.preemptions;
        ++result_.total_preemptions;
        preempted->cpmd_pending = std::max(
            preempted->cpmd_pending, kcfg_.overheads.cpmd(false));
        Job* top = core.ready.pop_min().second;
        core.ready.push(run_key, preempted);
        core.pending_start = top;
        ++result_.cores[c].context_switches;
        this->BurnOverhead(c, trace::OverheadKind::kSch,
                           kcfg_.overheads.sched_overhead(n, true));
        this->BurnOverhead(c, trace::OverheadKind::kCnt1,
                           kcfg_.overheads.ctxsw_in_overhead());
      } else {
        // Keep running the current job; sch() only inspected the queue.
        core.pending_start = core.running;
        core.running = nullptr;
        this->BurnOverhead(c, trace::OverheadKind::kSch,
                           kcfg_.overheads.scaled(kcfg_.overheads.sched_exec));
      }
    } else if (have_top) {
      Job* top = core.ready.pop_min().second;
      core.pending_start = top;
      ++result_.cores[c].context_switches;
      this->BurnOverhead(c, trace::OverheadKind::kSch,
                         kcfg_.overheads.sched_overhead(n, false));
      this->BurnOverhead(c, trace::OverheadKind::kCnt1,
                         kcfg_.overheads.ctxsw_in_overhead());
    } else {
      core.state = CoreState::kIdle;
      this->Trace(trace::EventKind::kIdle, c, nullptr);
    }
  }

  void StartSegment(std::uint32_t c) {
    Core& core = cores_[c];
    Job* j = core.running;
    assert(j != nullptr);
    if (j->cpmd_pending > 0) {
      // Working-set reload (Figure 1 "cache"): occupies the CPU like task
      // code, but is NOT charged against the subtask budget — budgets
      // meter task execution, so the reload extends both counters in
      // lockstep. (Otherwise reload time would silently displace real work
      // onto later subtasks, which no analysis accounts for.)
      j->exec_remaining += j->cpmd_pending;
      if (j->budget_remaining < kTimeNever / 2) {
        j->budget_remaining += j->cpmd_pending;
      }
      result_.cores[c].cpmd_charged += j->cpmd_pending;
      this->Trace(trace::EventKind::kOverheadBegin, c, j,
                  trace::OverheadKind::kCache, j->cpmd_pending);
      j->cpmd_pending = 0;
    }
    core.state = CoreState::kExec;
    core.seg_start = now_;
    const Time len = std::min(j->exec_remaining, j->budget_remaining);
    ++core.epoch;
    this->Push(Ev{.t = now_ + len, .kind = EvKind::kSegmentEnd, .core = c,
                  .epoch = core.epoch});
    this->Trace(trace::EventKind::kStart, c, j);
  }

  void OnSegmentEnd(const Ev& ev) {
    Core& core = cores_[ev.core];
    if (ev.epoch != core.epoch || core.state != CoreState::kExec) return;
    Job* j = core.running;
    const Time progress = now_ - core.seg_start;
    j->charge(progress);
    result_.cores[ev.core].busy_exec += progress;

    if (j->exec_remaining <= 0) {
      FinishJob(ev.core, j);
    } else {
      MigrateJob(ev.core, j);
    }
  }

  void FinishJob(std::uint32_t c, Job* j) {
    Core& core = cores_[c];
    TaskRt<SleepQ>& tr = tasks_[j->task_idx];

    this->RecordCompletion(c, j);

    // Back to the sleep queue of the core hosting the FIRST subtask
    // (paper §2: tail subtasks return there; normal tasks sleep locally).
    const partition::CoreId first = FirstCore(j->task_idx);
    // Finishing exactly at the next release boundary is fine: the timer
    // fires at the same instant, after this finish (event order), and
    // finds the task asleep. Only strictly-passed releases are overruns.
    Time wake = tr.next_release;
    while (wake < now_) {
      wake += this->SampleInterArrival(j->task_idx);
      ++tr.stats.shed;
      this->Trace(trace::EventKind::kJobShed, first, j,
                  trace::OverheadKind::kNone, 0, wake);
    }
    tr.next_release = wake;
    tr.sleep_handle = cores_[first].sleep.push(wake, j->task_idx);
    tr.active = false;
    this->Push(Ev{.t = wake, .kind = EvKind::kTimer, .core = first,
                  .task_idx = j->task_idx});

    const Time cost =
        (c == first)
            ? kcfg_.overheads.finish_overhead_normal(n_of_core_[c])
            : kcfg_.overheads.finish_overhead_tail(n_of_core_[first]);
    core.running = nullptr;
    core.state = CoreState::kOvh;
    core.need_sched = true;
    this->BurnOverhead(c, trace::OverheadKind::kCnt2, cost, j);
  }

  void MigrateJob(std::uint32_t c, Job* j) {
    Core& core = cores_[c];
    const PlacedTask& pt = *tasks_[j->task_idx].pt;
    assert(j->part + 1 < pt.parts.size());

    const partition::CoreId dest = pt.parts[j->part + 1].core;
    this->Trace(trace::EventKind::kMigrateOut, c, j);
    ++tasks_[j->task_idx].stats.migrations;
    ++result_.total_migrations;

    j->part += 1;
    j->budget_remaining = (j->part + 1 == pt.parts.size())
                              ? kTimeNever
                              : pt.parts[j->part].budget;
    j->cpmd_pending = std::max(j->cpmd_pending, kcfg_.overheads.cpmd(true));

    const Time cost = kcfg_.overheads.migrate_overhead(n_of_core_[dest]);
    core.running = nullptr;
    core.state = CoreState::kOvh;
    core.need_sched = true;
    this->BurnOverhead(c, trace::OverheadKind::kCnt2, cost, j);

    // The job becomes runnable at the destination once the remote insert
    // completes.
    this->Push(Ev{.t = now_ + cost, .kind = EvKind::kMigrationArrival,
                  .core = dest, .job = j});
  }

  void OnMigrationArrival(const Ev& ev) {
    Job* j = ev.job;
    Core& dest = cores_[ev.core];
    this->Trace(trace::EventKind::kMigrateIn, ev.core, j);
    dest.ready.push(CurKey(j), j);
    // The insert was paid by the source core; the destination only runs
    // its scheduler (charged in the decision phase).
    InterruptCore(ev.core, trace::OverheadKind::kNone, 0);
  }

  const partition::Partition& p_;
  std::vector<std::size_t> n_of_core_;
};

}  // namespace

Time SimResult::total_overhead() const {
  Time t = 0;
  for (const CoreStats& c : cores) {
    t += c.overhead_rls + c.overhead_sch + c.overhead_cnt1 + c.overhead_cnt2;
  }
  return t;
}

std::string SimResult::summary() const {
  std::string out;
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "simulated %.1fms: %llu misses, %llu migrations, %llu "
                "preemptions, overhead %.1fus\n",
                ToMillis(simulated),
                static_cast<unsigned long long>(total_misses),
                static_cast<unsigned long long>(total_migrations),
                static_cast<unsigned long long>(total_preemptions),
                ToMicros(total_overhead()));
  out += buf;
  for (const TaskStats& t : tasks) {
    std::snprintf(buf, sizeof(buf),
                  "  tau%-3u released=%-6llu completed=%-6llu misses=%llu "
                  "maxR=%.3fms avgR=%.3fms migr=%llu preempt=%llu\n",
                  t.id, static_cast<unsigned long long>(t.released),
                  static_cast<unsigned long long>(t.completed),
                  static_cast<unsigned long long>(t.deadline_misses),
                  ToMillis(t.max_response), t.avg_response / kMillisecond,
                  static_cast<unsigned long long>(t.migrations),
                  static_cast<unsigned long long>(t.preemptions));
    out += buf;
  }
  return out;
}

SimResult Simulate(const partition::Partition& p, const SimConfig& cfg,
                   trace::Recorder* recorder) {
  return containers::WithQueueBackend(cfg.ready_backend, [&](auto rb) {
    return containers::WithQueueBackend(cfg.sleep_backend, [&](auto sb) {
      using ReadyQ =
          containers::QueueOf<decltype(rb)::value, std::uint64_t, Job*>;
      using SleepQ = containers::QueueOf<decltype(sb)::value, Time,
                                         std::size_t>;
      Engine<ReadyQ, SleepQ> engine(p, cfg, recorder);
      return engine.Run();
    });
  });
}

}  // namespace sps::sim
