#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "obs/sink.hpp"
#include "obs/trace_buffer.hpp"
#include "sim/kernel.hpp"
#include "util/thread_pool.hpp"

namespace sps::sim {

namespace {

using containers::QueueBackend;
using partition::PlacedTask;

/// Width of the EDF ready-key task-index tie-break (CurKey): task
/// indices are packed into 16 bits below the absolute deadline (widened
/// from 10 in PR 4 so realistically sized sets never hit the limit).
/// EDF partitions with more tasks would alias indices — equal-deadline
/// order would fall back to insertion FIFO, which is interleaving-
/// dependent — so the sharded runner declines them (serial fallback in
/// Dispatch) rather than quietly lose bit-identity.
inline constexpr std::size_t kEdfTieBreakTasks = 1u << 16;

struct Job : kernel::JobBase {
  Time budget_remaining = 0;  ///< current subtask's budget left
  std::size_t part = 0;       ///< current subtask index
  Time cpmd_pending = 0;      ///< reload cost to charge at next start

  /// Split budgets meter execution: progress burns WCET and budget in
  /// lockstep (the kernel charges through this hook).
  void charge(Time progress) {
    exec_remaining -= progress;
    budget_remaining -= progress;
  }
};

template <typename SleepQ>
struct TaskRt : kernel::TaskRunBase<Job> {
  const PlacedTask* pt = nullptr;
  typename SleepQ::handle sleep_handle = nullptr;
};

/// The partitioned policy's per-core state: one ready and one sleep
/// queue per core, exactly as in the paper's kernel patch.
template <typename ReadyQ, typename SleepQ>
struct PerCoreQueues {
  ReadyQ ready;
  SleepQ sleep;
};

/// The semi-partitioned scheduling policy, hosted on the shared kernel.
/// ReadyQ orders jobs by scheduling key (fixed priority under FP, the
/// absolute window deadline under EDF; FIFO among ties). SleepQ orders
/// inactive tasks by wake-up time. EventQ is the kernel's event-queue
/// policy: the static (devirtualized) default or the dynamic slot for
/// --event-queue overrides (DESIGN.md §9). Sink is the observability
/// policy (DESIGN.md §10): obs::NullSink unless the run records a trace
/// or metrics.
template <typename ReadyQ, typename SleepQ, typename EventQ, typename Sink>
class Engine final
    : public kernel::KernelBase<Engine<ReadyQ, SleepQ, EventQ, Sink>, Job,
                                TaskRt<SleepQ>, PerCoreQueues<ReadyQ, SleepQ>,
                                EventQ, Sink> {
  static_assert(containers::ReadyQueueFor<ReadyQ, std::uint64_t, Job*>);
  static_assert(containers::SleepQueueFor<SleepQ, Time, std::size_t>);

 public:
  using Base = kernel::KernelBase<Engine<ReadyQ, SleepQ, EventQ, Sink>, Job,
                                  TaskRt<SleepQ>,
                                  PerCoreQueues<ReadyQ, SleepQ>, EventQ,
                                  Sink>;
  friend Base;
  using Ev = kernel::Event<Job>;
  using EvKind = kernel::EvKind;
  using CoreState = kernel::CoreState;
  using Core = typename Base::Core;
  using ShardContext = typename Base::ShardContext;

  static kernel::KernelConfig MakeKernelConfig(const partition::Partition& p,
                                               const SimConfig& cfg) {
    kernel::KernelConfig k{p.num_cores, cfg.horizon, cfg.overheads,
                           cfg.exec, cfg.arrivals,
                           cfg.stop_on_first_miss,
                           cfg.event_backend, cfg.job_arena,
                           cfg.record_trace, cfg.record_metrics};
    k.exec_generations = cfg.exec_generations;
    k.trace_drain = cfg.trace_drain;
    k.trace_window = cfg.trace_window;
    return k;
  }

  Engine(const partition::Partition& p, const SimConfig& cfg,
         const ShardContext* shard = nullptr)
      : Base(MakeKernelConfig(p, cfg), p.tasks.size(), shard),
        p_(p) {
    for (std::size_t i = 0; i < p.tasks.size(); ++i) {
      tasks_[i].pt = &p.tasks[i];
      tasks_[i].stats.id = p.tasks[i].task.id;
    }
    // Static queue-size parameter N per core, as in the analysis.
    n_of_core_.resize(p.num_cores);
    for (partition::CoreId c = 0; c < p.num_cores; ++c) {
      n_of_core_[c] = std::max<std::size_t>(1, p.entries_on(c));
    }
  }

  using Base::BootShard;
  using Base::CollectShardInto;
  using Base::DrainMailbox;
  using Base::FinalizeShardObservability;
  using Base::FinalizeTasksInto;
  using Base::halted;
  using Base::NextEventKey;
  using Base::Run;
  using Base::RunWindow;
  using Base::sink;

 private:
  using Base::CoreAt;
  using Base::CoreStatsAt;
  using Base::cores_;
  using Base::kcfg_;
  using Base::lane_;
  using Base::now_;
  using Base::result_;
  using Base::router_;
  using Base::tasks_;

  // ---- kernel policy hooks ----------------------------------------------

  void Boot() {
    // All tasks start in their first core's sleep queue, waking at t=0
    // (synchronous release — the critical instant). A shard boots only
    // the tasks whose first core is its own lane.
    for (std::size_t i = 0; i < p_.tasks.size(); ++i) {
      const partition::CoreId c = FirstCore(i);
      if (router_ != nullptr && c != lane_) continue;
      tasks_[i].sleep_handle = CoreAt(c).sleep.push(0, i);
      tasks_[i].next_release = 0;
      this->Push(Ev{.t = 0, .kind = EvKind::kTimer, .core = c,
                    .task_idx = i});
    }
  }

  void Dispatch(const Ev& ev) {
    switch (ev.kind) {
      case EvKind::kTimer: OnTimer(ev); break;
      case EvKind::kOverheadEnd: OnOverheadEnd(ev); break;
      case EvKind::kSegmentEnd: OnSegmentEnd(ev); break;
      case EvKind::kMigrationArrival: OnMigrationArrival(ev); break;
    }
  }

  /// Cross-lane delivery hook: a remote finish's wake-up timer
  /// materializes the sleep-queue entry HERE, on the queue's owning
  /// lane — in the serial engine FinishJob pushes it directly. Same
  /// push/erase counts either way; the sleep queue is write-only
  /// bookkeeping (never popped), so the result cannot differ.
  void OnDeliver(const Ev& ev) {
    if (ev.kind != EvKind::kTimer) return;
    assert(FirstCore(ev.task_idx) == lane_);
    TaskRt<SleepQ>& tr = tasks_[ev.task_idx];
    assert(tr.sleep_handle == nullptr);
    tr.sleep_handle = CoreAt(lane_).sleep.push(ev.t, ev.task_idx);
  }

  Time WcetOf(std::size_t ti) const { return TaskOf(ti).wcet; }
  Time PeriodOf(std::size_t ti) const { return TaskOf(ti).period; }
  Time DeadlineOf(std::size_t ti) const { return TaskOf(ti).deadline; }
  rt::TaskId TaskIdOf(std::size_t ti) const { return TaskOf(ti).id; }

  void CollectQueueStats(SimResult& r) const {
    for (const Core& core : cores_) {
      r.ready_ops += core.ready.counters();
      r.sleep_ops += core.sleep.counters();
    }
  }

  // ---- helpers ----------------------------------------------------------

  partition::CoreId FirstCore(std::size_t ti) const {
    return tasks_[ti].pt->parts[0].core;
  }

  const rt::Task& TaskOf(std::size_t ti) const { return tasks_[ti].pt->task; }

  /// Ready-queue ordering key of the job's CURRENT subtask: fixed
  /// priority under FP (unique per core — Partition::valid enforces it);
  /// under EDF the absolute window deadline, tie-broken by task index.
  /// The deterministic EDF tie-break (vs. PR-2's arrival-order FIFO)
  /// makes the ready order a pure function of job state, independent of
  /// the event interleaving — required for shard-count invariance and a
  /// common choice in real EDF schedulers.
  std::uint64_t CurKey(const Job* j) const {
    const auto& part = tasks_[j->task_idx].pt->parts[j->part];
    if (p_.policy == partition::SchedPolicy::kFixedPriority) {
      return part.local_priority;
    }
    const Time rel = part.rel_deadline > 0 ? part.rel_deadline
                                           : TaskOf(j->task_idx).deadline;
    const Time d = j->release_time + rel;
    // The 16-bit shift narrows the representable deadline to 2^48 ns
    // (~3.3 days — far past any simulation here). Saturate rather than
    // silently wrap: deadlines at or past the cap all map to the
    // maximum key and order FIFO among themselves.
    const std::uint64_t capped = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(d), (1ull << 48) - 1);
    // Aliased indices (> kEdfTieBreakTasks tasks) only ever run serial
    // (Dispatch declines to shard them), where FIFO ties are fine.
    return (capped << 16) | (static_cast<std::uint64_t>(j->task_idx) &
                             (kEdfTieBreakTasks - 1));
  }

  /// Suspend execution (if any), account progress, queue a scheduling
  /// decision after `cost` of overhead.
  void InterruptCore(std::uint32_t c, trace::OverheadKind kind, Time cost) {
    Core& core = CoreAt(c);
    if (core.state == CoreState::kExec) {
      this->SuspendRunning(c);
    }
    if (core.pending_start != nullptr) {
      // A decision was in flight; fold the picked job back into the ready
      // queue so the new decision sees a consistent picture.
      core.ready.push(CurKey(core.pending_start), core.pending_start);
      core.pending_start = nullptr;
    }
    core.state = CoreState::kOvh;
    core.need_sched = true;
    this->BurnOverhead(c, kind, cost);
  }

  // ---- event handlers ----------------------------------------------------

  void OnTimer(const Ev& ev) {
    const std::size_t ti = ev.task_idx;
    TaskRt<SleepQ>& tr = tasks_[ti];
    const std::uint32_t c = ev.core;
    Core& core = CoreAt(c);
    assert(!tr.active && tr.sleep_handle != nullptr);

    // The timer handler removes the task from this core's sleep queue and
    // release() inserts it into the ready queue: the paper's rls path.
    core.sleep.erase(tr.sleep_handle);
    tr.sleep_handle = nullptr;

    Job* j = this->NewJob(ti, c);
    // The LAST subtask (or a normal task) runs to completion — its budget
    // is never enforced (the paper's tail subtasks finish, not migrate).
    j->budget_remaining = tr.pt->parts.size() > 1 ? tr.pt->parts[0].budget
                                                  : kTimeNever;
    j->part = 0;
    tr.next_release = now_ + this->SampleInterArrival(ti);

    this->Trace(trace::EventKind::kRelease, c, j);
    core.ready.push(CurKey(j), j);

    const Time cost = kcfg_.overheads.release_overhead(n_of_core_[c]);
    InterruptCore(c, trace::OverheadKind::kRls, cost);
  }

  void OnOverheadEnd(const Ev& ev) {
    Core& core = CoreAt(ev.core);
    if (ev.epoch != core.epoch || core.state != CoreState::kOvh) return;

    if (core.pending_start != nullptr) {
      Job* j = core.pending_start;
      core.pending_start = nullptr;
      core.running = j;
      StartSegment(ev.core);
      return;
    }

    if (core.need_sched) {
      core.need_sched = false;
      MakeSchedulingDecision(ev.core);
      return;
    }

    // Nothing to decide: resume the suspended job or go idle.
    if (core.running != nullptr) {
      StartSegment(ev.core);
    } else {
      core.state = CoreState::kIdle;
      this->Trace(trace::EventKind::kIdle, ev.core, nullptr);
    }
  }

  /// The sch() handler: pick the highest-priority ready job, requeue the
  /// current one on preemption, charge the corresponding costs, and leave
  /// the winner in pending_start for the post-overhead switch-in.
  void MakeSchedulingDecision(std::uint32_t c) {
    Core& core = CoreAt(c);
    const std::size_t n = n_of_core_[c];
    const bool have_top = !core.ready.empty();

    if (core.running != nullptr) {
      const std::uint64_t run_key = CurKey(core.running);
      if (have_top && core.ready.min_key() < run_key) {
        // Preemption: requeue current, switch to top.
        Job* preempted = core.running;
        core.running = nullptr;
        this->Trace(trace::EventKind::kPreempt, c, preempted);
        ++tasks_[preempted->task_idx].stats.preemptions;
        ++result_.total_preemptions;
        preempted->cpmd_pending = std::max(
            preempted->cpmd_pending, kcfg_.overheads.cpmd(false));
        Job* top = core.ready.pop_min().second;
        core.ready.push(run_key, preempted);
        core.pending_start = top;
        ++CoreStatsAt(c).context_switches;
        this->BurnOverhead(c, trace::OverheadKind::kSch,
                           kcfg_.overheads.sched_overhead(n, true));
        this->BurnOverhead(c, trace::OverheadKind::kCnt1,
                           kcfg_.overheads.ctxsw_in_overhead());
      } else {
        // Keep running the current job; sch() only inspected the queue.
        core.pending_start = core.running;
        core.running = nullptr;
        this->BurnOverhead(c, trace::OverheadKind::kSch,
                           kcfg_.overheads.scaled(kcfg_.overheads.sched_exec));
      }
    } else if (have_top) {
      Job* top = core.ready.pop_min().second;
      core.pending_start = top;
      ++CoreStatsAt(c).context_switches;
      this->BurnOverhead(c, trace::OverheadKind::kSch,
                         kcfg_.overheads.sched_overhead(n, false));
      this->BurnOverhead(c, trace::OverheadKind::kCnt1,
                         kcfg_.overheads.ctxsw_in_overhead());
    } else {
      core.state = CoreState::kIdle;
      this->Trace(trace::EventKind::kIdle, c, nullptr);
    }
  }

  void StartSegment(std::uint32_t c) {
    Core& core = CoreAt(c);
    Job* j = core.running;
    assert(j != nullptr);
    if (j->cpmd_pending > 0) {
      // Working-set reload (Figure 1 "cache"): occupies the CPU like task
      // code, but is NOT charged against the subtask budget — budgets
      // meter task execution, so the reload extends both counters in
      // lockstep. (Otherwise reload time would silently displace real work
      // onto later subtasks, which no analysis accounts for.)
      j->exec_remaining += j->cpmd_pending;
      if (j->budget_remaining < kTimeNever / 2) {
        j->budget_remaining += j->cpmd_pending;
      }
      CoreStatsAt(c).cpmd_charged += j->cpmd_pending;
      this->Trace(trace::EventKind::kOverheadBegin, c, j,
                  trace::OverheadKind::kCache, j->cpmd_pending);
      j->cpmd_pending = 0;
    }
    core.state = CoreState::kExec;
    core.seg_start = now_;
    const Time len = std::min(j->exec_remaining, j->budget_remaining);
    ++core.epoch;
    this->Push(Ev{.t = now_ + len, .kind = EvKind::kSegmentEnd, .core = c,
                  .epoch = core.epoch});
    this->Trace(trace::EventKind::kStart, c, j);
  }

  void OnSegmentEnd(const Ev& ev) {
    Core& core = CoreAt(ev.core);
    if (ev.epoch != core.epoch || core.state != CoreState::kExec) return;
    Job* j = core.running;
    this->BookProgress(ev.core, j);

    if (j->exec_remaining <= 0) {
      FinishJob(ev.core, j);
    } else {
      MigrateJob(ev.core, j);
    }
  }

  void FinishJob(std::uint32_t c, Job* j) {
    Core& core = CoreAt(c);
    TaskRt<SleepQ>& tr = tasks_[j->task_idx];

    this->RecordCompletion(c, j);

    // Back to the sleep queue of the core hosting the FIRST subtask
    // (paper §2: tail subtasks return there; normal tasks sleep locally).
    const partition::CoreId first = FirstCore(j->task_idx);
    // Finishing exactly at the next release boundary is fine: the timer
    // fires at the same instant, after this finish (event order), and
    // finds the task asleep. Only strictly-passed releases are overruns.
    Time wake = tr.next_release;
    while (wake < now_) {
      wake += this->SampleInterArrival(j->task_idx);
      ++tr.stats.shed;
      this->Trace(trace::EventKind::kJobShed, first, j,
                  trace::OverheadKind::kNone, 0, wake);
    }
    tr.next_release = wake;
    tr.active = false;
    if (this->IsRemoteLane(first)) {
      // Sharded cross-lane finish: the sleep-queue entry is created on
      // delivery of the timer event by the owning lane (OnDeliver) —
      // this lane must not touch a remote core's queues.
      assert(tr.sleep_handle == nullptr);
    } else {
      tr.sleep_handle = CoreAt(first).sleep.push(wake, j->task_idx);
    }
    this->Push(Ev{.t = wake, .kind = EvKind::kTimer, .core = first,
                  .task_idx = j->task_idx});

    const Time cost =
        (c == first)
            ? kcfg_.overheads.finish_overhead_normal(n_of_core_[c])
            : kcfg_.overheads.finish_overhead_tail(n_of_core_[first]);
    core.running = nullptr;
    core.state = CoreState::kOvh;
    core.need_sched = true;
    this->BurnOverhead(c, trace::OverheadKind::kCnt2, cost, j);
  }

  void MigrateJob(std::uint32_t c, Job* j) {
    Core& core = CoreAt(c);
    const PlacedTask& pt = *tasks_[j->task_idx].pt;
    assert(j->part + 1 < pt.parts.size());

    const partition::CoreId dest = pt.parts[j->part + 1].core;
    this->Trace(trace::EventKind::kMigrateOut, c, j);
    ++tasks_[j->task_idx].stats.migrations;
    ++result_.total_migrations;

    j->part += 1;
    j->budget_remaining = (j->part + 1 == pt.parts.size())
                              ? kTimeNever
                              : pt.parts[j->part].budget;
    j->cpmd_pending = std::max(j->cpmd_pending, kcfg_.overheads.cpmd(true));

    const Time cost = kcfg_.overheads.migrate_overhead(n_of_core_[dest]);
    core.running = nullptr;
    core.state = CoreState::kOvh;
    core.need_sched = true;
    this->BurnOverhead(c, trace::OverheadKind::kCnt2, cost, j);

    // The job becomes runnable at the destination once the remote insert
    // completes.
    this->Push(Ev{.t = now_ + cost, .kind = EvKind::kMigrationArrival,
                  .core = dest, .job = j});
  }

  void OnMigrationArrival(const Ev& ev) {
    Job* j = ev.job;
    Core& dest = CoreAt(ev.core);
    this->Trace(trace::EventKind::kMigrateIn, ev.core, j);
    dest.ready.push(CurKey(j), j);
    // The insert was paid by the source core; the destination only runs
    // its scheduler (charged in the decision phase).
    InterruptCore(ev.core, trace::OverheadKind::kNone, 0);
  }

  const partition::Partition& p_;
  std::vector<std::size_t> n_of_core_;
};

/// The default backend combination runs with the event queue inlined
/// into the kernel (no virtual dispatch on the per-event hot path).
using DefaultReadyQ = containers::BinomialHeapQueue<std::uint64_t, Job*>;
using DefaultSleepQ = containers::RbTreeQueue<Time, std::size_t>;
using StaticEventQ =
    kernel::StaticEventQueue<Job, QueueBackend::kBinomialHeap>;
using DynamicEventQ = kernel::DynamicEventQueue<Job>;
using obs::NullSink;
using obs::RecordSink;

/// Which cores can push cross-lane events INTO core c (DESIGN.md §9).
/// In a semi-partitioned system the only cross-core edges are the split
/// pipeline (part i's core -> part i+1's core: migration arrivals) and
/// the return to the first core's sleep queue (any part core can be the
/// finisher -> timer wake-ups on the first core).
std::vector<std::vector<std::uint32_t>> SenderLanes(
    const partition::Partition& p) {
  std::vector<std::vector<std::uint32_t>> senders(p.num_cores);
  auto add = [&](partition::CoreId to, partition::CoreId from) {
    if (to == from) return;
    std::vector<std::uint32_t>& v = senders[to];
    if (std::find(v.begin(), v.end(), from) == v.end()) v.push_back(from);
  };
  for (const PlacedTask& pt : p.tasks) {
    if (pt.parts.size() < 2) continue;
    const partition::CoreId first = pt.parts[0].core;
    for (std::size_t i = 0; i < pt.parts.size(); ++i) {
      add(first, pt.parts[i].core);
      if (i + 1 < pt.parts.size()) {
        add(pt.parts[i + 1].core, pt.parts[i].core);
      }
    }
  }
  return senders;
}

/// One simulation, sharded per core over the shared worker pool
/// (DESIGN.md §9). Alternates two barrier-separated phases: every lane
/// drains its mailbox and publishes the key of its next event, then
/// every lane dispatches events up to the minimum published key of its
/// sender lanes (a lane dispatching packed key K can only emit keys >=
/// K+1 cross-lane, so nothing that orders before the bound can still
/// arrive). Bit-identical to the serial engine by construction: per-task
/// RNG streams, deterministic mailbox ordering, unique ready keys —
/// and, with a recording sink, the per-lane trace buffers merge into
/// the byte-identical canonical trace (DESIGN.md §10).
///
/// Returns nullopt when a stop_on_first_miss run observed a miss: the
/// per-lane halt flags are aggregated at the drain barrier, the sharded
/// attempt is abandoned (lanes have over-processed past the miss), and
/// the caller reruns serially for the exact serial halt point.
template <typename ReadyQ, typename SleepQ, typename EventQ, typename Sink>
std::optional<SimResult> RunSharded(const partition::Partition& p,
                                    const SimConfig& cfg, unsigned threads) {
  using Eng = Engine<ReadyQ, SleepQ, EventQ, Sink>;
  const std::size_t m = p.num_cores;

  kernel::ShardRouter<Job> router(m);
  std::vector<TaskRt<SleepQ>> tasks(p.tasks.size());
  std::vector<std::unique_ptr<Eng>> shards;
  shards.reserve(m);
  for (std::size_t c = 0; c < m; ++c) {
    const typename Eng::ShardContext ctx{
        static_cast<std::uint32_t>(c), &router, tasks.data(), tasks.size()};
    shards.push_back(std::make_unique<Eng>(p, cfg, &ctx));
  }
  const std::vector<std::vector<std::uint32_t>> senders = SenderLanes(p);

  // Honor the requested width: SimConfig::shards caps TOTAL worker
  // threads (caller included). The shared pool serves full-width runs;
  // a narrower request gets a transient pool of its own (thread spawn
  // is microseconds against a whole-simulation run).
  std::unique_ptr<util::ThreadPool> own_pool;
  util::ThreadPool* pool = &util::SharedPool();
  if (threads - 1 < pool->num_threads()) {
    own_pool = std::make_unique<util::ThreadPool>(threads - 1);
    pool = own_pool.get();
  }
  pool->ParallelFor(m, [&](std::size_t c) { shards[c]->BootShard(); });

  const std::uint64_t horizon_key_max =
      (static_cast<std::uint64_t>(cfg.horizon) << kernel::kEvKindBits) |
      ((1u << kernel::kEvKindBits) - 1);
  std::vector<std::uint64_t> next_key(m, Eng::kNoEventKey);
  std::vector<std::uint64_t> bound(m, Eng::kNoEventKey);

  // Streaming trace window, sharded flavor (DESIGN.md §15): at the
  // phase-1 barrier every lane's next-event key is published, and any
  // future dispatch anywhere carries a key >= W = min(next_key) (a
  // cross-lane emission adds at least one rank on top of its dispatch
  // key). So each lane's below-W records — a stamp-key-monotone PREFIX
  // of its append order — are final; DrainBelow pops and sorts them and
  // the stamped k-way merge emits exactly the prefix the full-buffer
  // merge would. Byte-identity with the serial and full-buffer paths by
  // construction.
  const bool streaming = cfg.trace_drain != nullptr && cfg.record_trace;
  obs::TraceStreamStats stream_stats;
  std::vector<std::vector<obs::StampedEvent>> stream_runs;
  std::vector<trace::Event> stream_batch;
  auto stream_drain_below = [&](std::uint64_t limit) {
    if constexpr (Sink::kActive) {
      std::size_t resident = 0;
      for (std::size_t c = 0; c < m; ++c) {
        resident += shards[c]->sink().buffer().size();
      }
      stream_stats.peak_resident =
          std::max(stream_stats.peak_resident, resident);
      if (stream_runs.size() != m) stream_runs.resize(m);
      std::size_t total = 0;
      for (std::size_t c = 0; c < m; ++c) {
        stream_runs[c].clear();
        shards[c]->sink_mut().buffer_mut().DrainBelow(limit, stream_runs[c]);
        total += stream_runs[c].size();
      }
      if (total == 0) return;
      stream_batch.clear();
      obs::MergeSortedRuns(stream_runs, stream_batch);
      cfg.trace_drain->OnEvents(stream_batch);
      stream_stats.events += total;
      ++stream_stats.batches;
    } else {
      (void)limit;
    }
  };

  for (;;) {
    // Phase 1: deliver cross-lane events, publish every lane's clock.
    pool->ParallelFor(m, [&](std::size_t c) {
      shards[c]->DrainMailbox();
      next_key[c] = shards[c]->NextEventKey();
    });
    // Stop-on-first-miss: each lane raises its halt flag inside the
    // processing window; the flags are read here, at the barrier. The
    // over-processed sharded state cannot reproduce the serial halt
    // point, so the whole attempt is discarded.
    if (cfg.stop_on_first_miss) {
      for (std::size_t c = 0; c < m; ++c) {
        if (shards[c]->halted()) return std::nullopt;
      }
    }
    // All mailboxes are empty here (deliveries only happen in phase 2),
    // so once every lane's next event is beyond the horizon nothing can
    // ever be dispatched again.
    if (*std::min_element(next_key.begin(), next_key.end()) >
        horizon_key_max) {
      break;
    }
    if constexpr (Sink::kActive) {
      if (streaming) {
        // Drain once any lane reached its backpressure share (see
        // RunWindow): with every lane active that is when the total
        // nears the window; with one active lane it keeps that lane
        // from being throttled to one event per round.
        const std::size_t lane_cap = std::max<std::size_t>(
            1, cfg.trace_window / std::max<std::size_t>(1, m));
        std::size_t resident = 0;
        std::size_t max_lane = 0;
        for (std::size_t c = 0; c < m; ++c) {
          const std::size_t n = shards[c]->sink().buffer().size();
          resident += n;
          max_lane = std::max(max_lane, n);
        }
        stream_stats.peak_resident =
            std::max(stream_stats.peak_resident, resident);
        if (max_lane >= lane_cap) {
          stream_drain_below(
              *std::min_element(next_key.begin(), next_key.end()));
        }
      }
    }
    // Earliest key each lane could still DISPATCH — its own queue, or a
    // chain of incoming emissions (each cross-lane hop adds at least one
    // rank). The transitive closure matters: a lane whose own queue is
    // quiet can still receive a migration and emit a wake-up back, so
    // its raw queue minimum alone is NOT a valid send bound. Fixpoint a
    // la Bellman-Ford; converges in <= m passes (keys only decrease,
    // each pass relaxes one more hop).
    bound.assign(next_key.begin(), next_key.end());
    for (std::size_t pass = 0; pass < m; ++pass) {
      bool changed = false;
      for (std::size_t c = 0; c < m; ++c) {
        for (const std::uint32_t s : senders[c]) {
          const std::uint64_t via = bound[s] == Eng::kNoEventKey
                                        ? Eng::kNoEventKey
                                        : bound[s] + 1;
          if (via < bound[c]) {
            bound[c] = via;
            changed = true;
          }
        }
      }
      if (!changed) break;
    }
    // Phase 2: each lane advances through its safe window — every key
    // strictly below anything its senders could still emit. The global
    // minimum holder always qualifies, so every round makes progress.
    pool->ParallelFor(m, [&](std::size_t c) {
      std::uint64_t safe = Eng::kNoEventKey;
      for (const std::uint32_t s : senders[c]) {
        safe = std::min(safe, bound[s]);
      }
      shards[c]->RunWindow(safe);
    });
  }

  SimResult out;
  out.cores.resize(m);
  for (std::size_t c = 0; c < m; ++c) shards[c]->CollectShardInto(out);
  shards[0]->FinalizeTasksInto(out);

  // Observability merge (DESIGN.md §10): close every lane's streams,
  // k-way-merge the stamped trace buffers into the canonical sequence,
  // and fold the per-lane metrics (task histograms sum; each lane owns
  // exactly its core's occupancy row). All merging is commutative or
  // stamp-ordered, so the output is byte-identical to the serial run's.
  if constexpr (Sink::kActive) {
    for (std::size_t c = 0; c < m; ++c) {
      shards[c]->FinalizeShardObservability();
    }
    if (cfg.record_trace) {
      if (streaming) {
        // Flush the remainder and report the stream's bounds; the
        // canonical trace went through the drain (trace_events stays
        // empty), exactly like the serial kernel's Finalize.
        stream_drain_below(Eng::kNoEventKey);
        cfg.trace_drain->OnFinish(stream_stats);
      } else {
        std::vector<const obs::TraceBuffer*> bufs;
        bufs.reserve(m);
        for (std::size_t c = 0; c < m; ++c) {
          bufs.push_back(&shards[c]->sink().buffer());
        }
        out.trace_events = obs::MergeTraceBuffers(bufs);
      }
    }
    if (cfg.record_metrics) {
      obs::RunMetrics merged;
      merged.tasks.resize(tasks.size());
      merged.cores.resize(m);
      for (std::size_t c = 0; c < m; ++c) {
        const obs::RunMetrics& lane = shards[c]->sink().run_metrics();
        merged.cores[c] = lane.cores[0];
        for (std::size_t i = 0; i < tasks.size(); ++i) {
          merged.tasks[i] += lane.tasks[i];
        }
        merged.span = lane.span;  // == horizon on every lane
      }
      out.metrics = std::move(merged);
    }
  }
  return out;
}

template <typename ReadyQ, typename SleepQ, typename EventQ, typename Sink>
SimResult Dispatch(const partition::Partition& p, const SimConfig& cfg) {
  const unsigned threads =
      cfg.shards == 0 ? std::max(1u, std::thread::hardware_concurrency())
                      : cfg.shards;
  // Sharding needs multiple lanes. Since PR 4 trace recording, metrics,
  // and stop-on-first-miss all shard (the first two via per-lane sinks,
  // the last optimistically — a detected miss falls back to the exact
  // serial halt below). Only EDF partitions beyond the CurKey tie-break
  // width stay serial: with aliased task indices the ready order would
  // degrade to insertion FIFO, which is interleaving-dependent.
  const bool edf_alias = p.policy == partition::SchedPolicy::kEdf &&
                         p.tasks.size() > kEdfTieBreakTasks;
  // Streaming + stop_on_first_miss must take the serial loop: an
  // abandoned sharded attempt would already have streamed over-processed
  // events the drain consumer cannot un-see (DESIGN.md §15).
  const bool stream_needs_serial =
      cfg.trace_drain != nullptr && cfg.stop_on_first_miss;
  if (threads > 1 && p.num_cores > 1 && !edf_alias && !stream_needs_serial) {
    std::optional<SimResult> r =
        RunSharded<ReadyQ, SleepQ, EventQ, Sink>(p, cfg, threads);
    if (r.has_value()) return *std::move(r);
  }
  Engine<ReadyQ, SleepQ, EventQ, Sink> engine(p, cfg);
  return engine.Run();
}

}  // namespace

Time SimResult::total_overhead() const {
  Time t = 0;
  for (const CoreStats& c : cores) {
    t += c.overhead_rls + c.overhead_sch + c.overhead_cnt1 + c.overhead_cnt2;
  }
  return t;
}

std::string SimResult::summary() const {
  std::string out;
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "simulated %.1fms: %llu misses, %llu migrations, %llu "
                "preemptions, overhead %.1fus\n",
                ToMillis(simulated),
                static_cast<unsigned long long>(total_misses),
                static_cast<unsigned long long>(total_migrations),
                static_cast<unsigned long long>(total_preemptions),
                ToMicros(total_overhead()));
  out += buf;
  for (const TaskStats& t : tasks) {
    std::snprintf(buf, sizeof(buf),
                  "  tau%-3u released=%-6llu completed=%-6llu misses=%llu "
                  "maxR=%.3fms avgR=%.3fms migr=%llu preempt=%llu\n",
                  t.id, static_cast<unsigned long long>(t.released),
                  static_cast<unsigned long long>(t.completed),
                  static_cast<unsigned long long>(t.deadline_misses),
                  ToMillis(t.max_response), t.avg_response / kMillisecond,
                  static_cast<unsigned long long>(t.migrations),
                  static_cast<unsigned long long>(t.preemptions));
    out += buf;
  }
  return out;
}

SimResult Simulate(const partition::Partition& p, const SimConfig& cfg,
                   trace::Recorder* recorder) {
  // A non-null enabled recorder is the legacy way to ask for a trace.
  SimConfig ecfg = cfg;
  if (recorder != nullptr && recorder->enabled()) ecfg.record_trace = true;
  const bool recording = ecfg.record_trace || ecfg.record_metrics;

  // The default backend combination takes the fully-devirtualized
  // kernel; any override keeps the runtime-selected (type-erased) event
  // slot so the instantiation count stays ready x sleep + 1. The sink
  // doubles that only at compile time: at run time a simulation is
  // either all-NullSink (every hook compiled away — the perf-guarded
  // default) or recording.
  SimResult r = [&]() -> SimResult {
    if (!ecfg.force_dynamic_event_queue &&
        ecfg.ready_backend == QueueBackend::kBinomialHeap &&
        ecfg.sleep_backend == QueueBackend::kRbTree &&
        ecfg.event_backend == QueueBackend::kBinomialHeap) {
      return recording
                 ? Dispatch<DefaultReadyQ, DefaultSleepQ, StaticEventQ,
                            RecordSink>(p, ecfg)
                 : Dispatch<DefaultReadyQ, DefaultSleepQ, StaticEventQ,
                            NullSink>(p, ecfg);
    }
    return containers::WithQueueBackend(ecfg.ready_backend, [&](auto rb) {
      return containers::WithQueueBackend(ecfg.sleep_backend, [&](auto sb) {
        using ReadyQ =
            containers::QueueOf<decltype(rb)::value, std::uint64_t, Job*>;
        using SleepQ = containers::QueueOf<decltype(sb)::value, Time,
                                           std::size_t>;
        return recording
                   ? Dispatch<ReadyQ, SleepQ, DynamicEventQ, RecordSink>(
                         p, ecfg)
                   : Dispatch<ReadyQ, SleepQ, DynamicEventQ, NullSink>(
                         p, ecfg);
      });
    });
  }();
  if (recorder != nullptr && recorder->enabled()) {
    for (const trace::Event& e : r.trace_events) recorder->record(e);
  }
  return r;
}

}  // namespace sps::sim
